//! Hierarchical Navigable Small World (HNSW) approximate index.
//!
//! HNSW is the sub-linear graph index behind FAISS `IndexHNSWFlat`; it is
//! what makes nearest-neighbour tool dispatch hold up at 100k-tool
//! marketplace scale, where [`crate::FlatIndex`]'s exhaustive scan and
//! [`crate::IvfIndex`]'s probed scan both degenerate to linear work.
//!
//! This implementation is **seeded-deterministic**: node layers are drawn
//! from a splitmix64 hash of `(seed, insertion sequence)` rather than a
//! shared-state RNG, and every internal ordering (candidate heaps, greedy
//! descent, link pruning) breaks score ties by ascending node index under
//! [`f32::total_cmp`]. The same `(seed, insertion order)` therefore yields
//! a bit-identical graph — and bit-identical search results — regardless
//! of worker count or whether the graph was built cold or restored from a
//! snapshot (see [`crate::serial::hnsw_to_json`]).
//!
//! When `ef_search >= len` the search degrades gracefully to an exact
//! exhaustive scan, so cranking `ef_search` to the catalog size recovers
//! [`crate::FlatIndex`] semantics exactly.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::neighbor::top_k;
use crate::{IndexError, Metric, Neighbor, VectorIndex};

/// Hard cap on node layers; `ml = 1/ln(m)` makes layers above this
/// astronomically unlikely for any practical catalog size.
const MAX_LAYER: usize = 16;

/// Construction and search parameters for [`HnswIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Maximum out-links per node on layers above 0 (layer 0 keeps `2*m`).
    pub m: usize,
    /// Candidate-list width while building the graph (larger = better
    /// graph, slower build).
    pub ef_construction: usize,
    /// Candidate-list width while searching (larger = better recall,
    /// slower query). Values `>= len` trigger an exact exhaustive scan.
    pub ef_search: usize,
    /// Seed for the deterministic layer assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 128,
            ef_search: 64,
            seed: 0x9E37_11F5,
        }
    }
}

/// A scored graph node; the ordering used by every internal heap.
///
/// `Ord` ranks higher scores first and breaks ties by *ascending* node
/// index, mirroring [`Neighbor::ranking_cmp`] so internal traversal order
/// and final result order can never disagree on ties.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    node: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Epoch-stamped visited set, reused across layers (and across inserts
/// during construction) so a visit check never costs an `O(n)` clear.
struct Visited {
    epoch: u32,
    stamp: Vec<u32>,
}

impl Visited {
    fn new(capacity: usize) -> Self {
        Self {
            epoch: 0,
            stamp: vec![0; capacity],
        }
    }

    /// Starts a fresh visit generation over `n` nodes.
    fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Marks `node` visited; returns `true` if it was not yet visited.
    fn insert(&mut self, node: u32) -> bool {
        let slot = &mut self.stamp[node as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

/// Draws the layer for insertion `sequence` from a splitmix64 hash of the
/// seed — a pure function of `(seed, sequence)`, so graphs rebuilt in the
/// same insertion order are identical with no RNG state to thread through.
fn assigned_layer(seed: u64, sequence: u64, m: usize) -> usize {
    let mut z = seed ^ sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Upper 53 bits → uniform in (0, 1), never exactly 0 or 1.
    let unit = ((z >> 11) as f64 + 1.0) / ((1u64 << 53) as f64 + 2.0);
    let ml = 1.0 / (m.max(2) as f64).ln();
    (((-unit.ln()) * ml).floor() as usize).min(MAX_LAYER)
}

/// Approximate k-NN index over a navigable small-world layer hierarchy.
///
/// Mirrors FAISS `IndexHNSWFlat`: greedy descent through sparse upper
/// layers finds a good entry point, then a best-first beam of width
/// `ef_search` explores layer 0. Query cost grows roughly with
/// `ef_search * m * log(n)` rather than `n`.
///
/// # Examples
///
/// ```
/// use lim_vecstore::{HnswIndex, HnswParams, Metric, VectorIndex};
///
/// # fn main() -> Result<(), lim_vecstore::IndexError> {
/// let data: Vec<(u64, Vec<f32>)> = (0..64)
///     .map(|i| (i, vec![(i % 8) as f32, (i / 8) as f32]))
///     .collect();
/// let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
/// let index = HnswIndex::train(2, Metric::Euclidean, HnswParams::default(), &refs)?;
/// let hits = index.search(&[0.1, 0.1], 1);
/// assert_eq!(hits[0].id, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    params: HnswParams,
    ids: Vec<u64>,
    data: Vec<f32>,
    /// `links[node][layer]` → out-neighbours of `node` on `layer`; a node
    /// occupies layers `0..links[node].len()`.
    links: Vec<Vec<Vec<u32>>>,
    /// Node index of the top-layer entry point (`None` iff empty).
    entry: Option<u32>,
    /// Tombstoned ids in removal order; their nodes stay in the graph
    /// (and keep routing traversals) until compaction rebuilds it.
    deleted: Vec<u64>,
}

impl HnswIndex {
    /// Builds the graph by inserting `items` sequentially.
    ///
    /// Construction order is part of the index identity: the same items in
    /// the same order under the same params always produce the same graph.
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimMismatch`] if any vector disagrees with `dim`.
    /// * [`IndexError::DuplicateId`] on repeated ids.
    /// * [`IndexError::InsufficientTrainingData`] if `items` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `params.m < 2`.
    pub fn train(
        dim: usize,
        metric: Metric,
        params: HnswParams,
        items: &[(u64, &[f32])],
    ) -> Result<Self, IndexError> {
        assert!(dim > 0, "index dimension must be positive");
        assert!(params.m >= 2, "HNSW m must be at least 2");
        if items.is_empty() {
            return Err(IndexError::InsufficientTrainingData {
                supplied: 0,
                clusters: 1,
            });
        }
        for (_, v) in items {
            if v.len() != dim {
                return Err(IndexError::DimMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        let mut seen: Vec<u64> = items.iter().map(|(id, _)| *id).collect();
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(IndexError::DuplicateId(w[0]));
        }

        let mut index = Self {
            dim,
            metric,
            params,
            ids: Vec::with_capacity(items.len()),
            data: Vec::with_capacity(items.len() * dim),
            links: Vec::with_capacity(items.len()),
            entry: None,
            deleted: Vec::new(),
        };
        let mut visited = Visited::new(items.len());
        for (sequence, (id, vector)) in items.iter().enumerate() {
            index.ids.push(*id);
            index.data.extend_from_slice(vector);
            let layer = assigned_layer(params.seed, sequence as u64, params.m);
            index.links.push(vec![Vec::new(); layer + 1]);
            index.connect(sequence as u32, layer, &mut visited);
        }
        Ok(index)
    }

    /// Reassembles an index from previously persisted parts (see
    /// [`crate::serial`]) without rebuilding the graph, so a restored
    /// index traverses exactly like the one that was saved.
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimMismatch`] if any vector disagrees with `dim`.
    /// * [`IndexError::DuplicateId`] on repeated ids.
    /// * [`IndexError::NotTrained`] if the graph is structurally invalid:
    ///   `links` does not pair up with the postings, a node has no layers,
    ///   a link points out of bounds or to a node absent from that layer,
    ///   or the entry point is missing / not on the top layer.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `params.m < 2`.
    pub fn from_parts(
        dim: usize,
        metric: Metric,
        params: HnswParams,
        postings: Vec<(u64, Vec<f32>)>,
        links: Vec<Vec<Vec<u32>>>,
        entry: Option<u32>,
    ) -> Result<Self, IndexError> {
        assert!(dim > 0, "index dimension must be positive");
        assert!(params.m >= 2, "HNSW m must be at least 2");
        for (_, v) in &postings {
            if v.len() != dim {
                return Err(IndexError::DimMismatch {
                    expected: dim,
                    got: v.len(),
                });
            }
        }
        let mut seen: Vec<u64> = postings.iter().map(|(id, _)| *id).collect();
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(IndexError::DuplicateId(w[0]));
        }
        let n = postings.len();
        if links.len() != n {
            return Err(IndexError::NotTrained);
        }
        let top = links.iter().map(Vec::len).max().unwrap_or(0);
        for layers in &links {
            if layers.is_empty() || layers.len() > MAX_LAYER + 1 {
                return Err(IndexError::NotTrained);
            }
            for (layer, neighbors) in layers.iter().enumerate() {
                for &peer in neighbors {
                    // A link must land on a node that occupies that layer.
                    if links.get(peer as usize).map(Vec::len).unwrap_or(0) <= layer {
                        return Err(IndexError::NotTrained);
                    }
                }
            }
        }
        match entry {
            Some(e) if links.get(e as usize).map(Vec::len) == Some(top) => {}
            None if n == 0 => {}
            _ => return Err(IndexError::NotTrained),
        }
        let mut ids = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n * dim);
        for (id, v) in postings {
            ids.push(id);
            data.extend_from_slice(&v);
        }
        Ok(Self {
            dim,
            metric,
            params,
            ids,
            data,
            links,
            entry,
            deleted: Vec::new(),
        })
    }

    /// Inserts one more vector natively into the graph, exactly as if it
    /// had been the next item of [`HnswIndex::train`]'s sequence: its
    /// layer is drawn from `(seed, node index)` and it is wired in with
    /// the same beam search and selection heuristic. The same mutation
    /// sequence therefore always yields a bit-identical graph.
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimMismatch`] on wrong dimensionality.
    /// * [`IndexError::DuplicateId`] on a repeated id — including ids that
    ///   are tombstoned but not yet compacted away.
    pub fn add(&mut self, id: u64, vector: &[f32]) -> Result<(), IndexError> {
        if vector.len() != self.dim {
            return Err(IndexError::DimMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        if self.ids.contains(&id) {
            return Err(IndexError::DuplicateId(id));
        }
        let sequence = self.ids.len() as u64;
        self.ids.push(id);
        self.data.extend_from_slice(vector);
        let layer = assigned_layer(self.params.seed, sequence, self.params.m);
        self.links.push(vec![Vec::new(); layer + 1]);
        let mut visited = Visited::new(self.ids.len());
        self.connect(sequence as u32, layer, &mut visited);
        Ok(())
    }

    /// Tombstones `id`: it disappears from every search result, but its
    /// node stays in the graph — still routing traversals and still
    /// costing distance evaluations — until compaction rebuilds the graph
    /// from the live postings (in their insertion order, same params).
    ///
    /// Returns `true` when the removal tripped [`crate::compaction_due`]
    /// and the graph was rebuilt.
    ///
    /// # Errors
    ///
    /// [`IndexError::UnknownId`] if `id` was never added or is already
    /// tombstoned.
    pub fn remove(&mut self, id: u64) -> Result<bool, IndexError> {
        if !self.ids.contains(&id) || self.deleted.contains(&id) {
            return Err(IndexError::UnknownId(id));
        }
        self.deleted.push(id);
        if crate::compaction_due(self.deleted.len(), self.ids.len()) {
            self.compact();
            return Ok(true);
        }
        Ok(false)
    }

    /// Tombstoned ids in removal order (empty right after a compaction).
    pub fn tombstones(&self) -> &[u64] {
        &self.deleted
    }

    /// Rebuilds the graph from the live postings in insertion order under
    /// the same params — deterministic, so engines replaying the same
    /// mutation log compact into bit-identical graphs.
    fn compact(&mut self) {
        let live: Vec<(u64, Vec<f32>)> = self.iter().map(|(id, v)| (id, v.to_vec())).collect();
        if live.is_empty() {
            self.ids.clear();
            self.data.clear();
            self.links.clear();
            self.entry = None;
            self.deleted.clear();
            return;
        }
        let refs: Vec<(u64, &[f32])> = live.iter().map(|(id, v)| (*id, v.as_slice())).collect();
        *self = Self::train(self.dim, self.metric, self.params, &refs)
            .expect("live postings form a valid training set");
    }

    /// The construction parameters.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// The metric this index scores with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Iterates over live `(id, vector)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> + '_ {
        self.iter_all()
            .filter(move |(id, _)| !self.deleted.contains(id))
    }

    /// Iterates over every stored `(id, vector)` pair in insertion order,
    /// including tombstoned entries — the persistence view (see
    /// [`crate::serial`]): node indices in [`HnswIndex::links`] refer to
    /// this full sequence, so dead nodes must be persisted too.
    pub fn iter_all(&self) -> impl Iterator<Item = (u64, &[f32])> + '_ {
        self.ids
            .iter()
            .enumerate()
            .map(move |(i, id)| (*id, &self.data[i * self.dim..(i + 1) * self.dim]))
    }

    /// The adjacency lists: `links()[node][layer]` → neighbours on `layer`.
    pub fn links(&self) -> &[Vec<Vec<u32>>] {
        &self.links
    }

    /// Node index of the top-layer entry point (`None` iff empty).
    pub fn entry(&self) -> Option<u32> {
        self.entry
    }

    /// Highest occupied layer (0 for a single-layer graph).
    pub fn max_layer(&self) -> usize {
        self.entry
            .map(|e| self.links[e as usize].len() - 1)
            .unwrap_or(0)
    }

    /// Searches and also reports how many vector-distance evaluations the
    /// query cost — the machine-independent latency proxy the ann bench
    /// gates on (wall-clock is not comparable across CI machines).
    pub fn search_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, usize) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let n = self.ids.len();
        if n == self.deleted.len() || k == 0 {
            return (Vec::new(), 0);
        }
        // Widen the beam by the tombstone count so dead nodes — which
        // still route and occupy beam slots — cannot crowd live answers
        // out of the ef window.
        let ef = self.params.ef_search.max(k) + self.deleted.len();
        if ef >= n {
            // Exact exhaustive fallback: with the beam as wide as the
            // catalog the graph can't prune anything, so answer exactly —
            // this is what makes max-ef_search agree with FlatIndex. Only
            // live vectors are scanned (and counted as evaluations).
            let candidates: Vec<Neighbor> = self
                .iter()
                .map(|(id, v)| Neighbor::new(id, self.metric.score(query, v)))
                .collect();
            let evals = candidates.len();
            return (top_k(candidates, k), evals);
        }
        let mut evals = 0usize;
        let mut visited = Visited::new(n);
        let mut ep = Scored {
            score: self.score_node(query, self.entry.expect("non-empty"), &mut evals),
            node: self.entry.expect("non-empty"),
        };
        for layer in (1..=self.max_layer()).rev() {
            ep = self.greedy_step(query, ep, layer, &mut evals);
        }
        let found = self.search_layer(query, ep, ef, 0, &mut visited, &mut evals);
        let candidates = found
            .into_iter()
            .map(|s| Neighbor::new(self.ids[s.node as usize], s.score))
            .filter(|nb| !self.deleted.contains(&nb.id))
            .collect();
        (top_k(candidates, k), evals)
    }

    fn vector(&self, node: u32) -> &[f32] {
        let i = node as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    fn score_node(&self, query: &[f32], node: u32, evals: &mut usize) -> f32 {
        *evals += 1;
        self.metric.score(query, self.vector(node))
    }

    /// Greedy hill-climb on one layer: moves to the best-scoring neighbour
    /// until no neighbour strictly improves. Ties never move (strict
    /// improvement under `total_cmp`), so the walk is deterministic.
    fn greedy_step(
        &self,
        query: &[f32],
        mut current: Scored,
        layer: usize,
        evals: &mut usize,
    ) -> Scored {
        loop {
            let mut best = current;
            for &peer in &self.links[current.node as usize][layer] {
                let cand = Scored {
                    score: self.score_node(query, peer, evals),
                    node: peer,
                };
                if cand > best {
                    best = cand;
                }
            }
            if best.node == current.node {
                return current;
            }
            current = best;
        }
    }

    /// Best-first beam search on one layer, returning up to `ef` scored
    /// nodes (unordered; callers rank them).
    fn search_layer(
        &self,
        query: &[f32],
        entry: Scored,
        ef: usize,
        layer: usize,
        visited: &mut Visited,
        evals: &mut usize,
    ) -> Vec<Scored> {
        visited.reset(self.ids.len());
        visited.insert(entry.node);
        // `frontier` pops best-first; `results` pops worst-first so the
        // beam can evict its weakest member in O(log ef).
        let mut frontier = BinaryHeap::from([entry]);
        let mut results = BinaryHeap::from([std::cmp::Reverse(entry)]);
        while let Some(candidate) = frontier.pop() {
            let worst = results.peek().expect("beam is never empty").0;
            if results.len() >= ef && candidate < worst {
                break;
            }
            for &peer in &self.links[candidate.node as usize][layer] {
                if !visited.insert(peer) {
                    continue;
                }
                let scored = Scored {
                    score: self.score_node(query, peer, evals),
                    node: peer,
                };
                let worst = results.peek().expect("beam is never empty").0;
                if results.len() < ef || scored > worst {
                    frontier.push(scored);
                    results.push(std::cmp::Reverse(scored));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        results.into_iter().map(|r| r.0).collect()
    }

    /// Wires a freshly appended `node` (occupying layers `0..=layer`) into
    /// the graph — the sequential-insertion core of HNSW construction.
    fn connect(&mut self, node: u32, layer: usize, visited: &mut Visited) {
        let Some(entry) = self.entry else {
            self.entry = Some(node);
            return;
        };
        let query: Vec<f32> = self.vector(node).to_vec();
        let mut evals = 0usize;
        let top = self.links[entry as usize].len() - 1;
        let mut ep = Scored {
            score: self.score_node(&query, entry, &mut evals),
            node: entry,
        };
        // Descend through layers above the node's top layer greedily.
        for l in ((layer + 1)..=top).rev() {
            ep = self.greedy_step(&query, ep, l, &mut evals);
        }
        // On each shared layer, beam-search then link via the selection
        // heuristic.
        for l in (0..=layer.min(top)).rev() {
            let mut found = self.search_layer(
                &query,
                ep,
                self.params.ef_construction,
                l,
                visited,
                &mut evals,
            );
            found.sort_by(|a, b| b.cmp(a));
            ep = found[0];
            let cap = self.layer_cap(l);
            let chosen = self.select_heuristic(&found, self.params.m);
            self.links[node as usize][l] = chosen.clone();
            for peer in chosen {
                let peers = &mut self.links[peer as usize][l];
                peers.push(node);
                if peers.len() > cap {
                    self.prune(peer, l, cap);
                }
            }
        }
        if layer > top {
            self.entry = Some(node);
        }
    }

    /// Out-link budget for a layer (layer 0 keeps twice as many, as in
    /// the reference algorithm).
    fn layer_cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// The reference "select neighbours by heuristic": walk `candidates`
    /// best-first and keep one only if it is closer to the anchor than to
    /// any already-kept neighbour. Plain top-M selection points every
    /// link into the anchor's own cluster and disconnects the graph on
    /// clustered data; this pruning rule preserves the long-range edges
    /// recall depends on. Fully deterministic: candidates arrive in
    /// (score desc, node asc) order and ties reject under `total_cmp`.
    fn select_heuristic(&self, candidates: &[Scored], cap: usize) -> Vec<u32> {
        let mut chosen: Vec<Scored> = Vec::with_capacity(cap);
        for &candidate in candidates {
            if chosen.len() >= cap {
                break;
            }
            let diverse = chosen.iter().all(|kept| {
                let to_kept = self
                    .metric
                    .score(self.vector(candidate.node), self.vector(kept.node));
                to_kept.total_cmp(&candidate.score).is_lt()
            });
            if diverse {
                chosen.push(candidate);
            }
        }
        chosen.into_iter().map(|s| s.node).collect()
    }

    /// Shrinks `node`'s layer-`layer` links back to `cap` with the same
    /// selection heuristic, anchored at the node's own vector.
    fn prune(&mut self, node: u32, layer: usize, cap: usize) {
        let anchor = self.vector(node);
        let mut scored: Vec<Scored> = self.links[node as usize][layer]
            .iter()
            .map(|&peer| Scored {
                score: self.metric.score(anchor, self.vector(peer)),
                node: peer,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        self.links[node as usize][layer] = self.select_heuristic(&scored, cap);
    }
}

impl VectorIndex for HnswIndex {
    /// Number of **live** vectors; tombstoned entries do not count.
    fn len(&self) -> usize {
        self.ids.len() - self.deleted.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_with_stats(query, k).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;

    fn grid_items(n: u64) -> Vec<(u64, Vec<f32>)> {
        (0..n)
            .map(|i| (i, vec![(i % 10) as f32, (i / 10) as f32]))
            .collect()
    }

    fn build(items: &[(u64, Vec<f32>)], params: HnswParams) -> HnswIndex {
        let refs: Vec<(u64, &[f32])> = items.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        HnswIndex::train(2, Metric::Euclidean, params, &refs).unwrap()
    }

    #[test]
    fn finds_exact_nearest_on_small_grid() {
        let idx = build(&grid_items(100), HnswParams::default());
        let hits = idx.search(&[3.0, 4.0], 1);
        assert_eq!(hits[0].id, 43); // x=3, y=4 → 4*10+3
    }

    #[test]
    fn construction_is_bit_deterministic() {
        let items = grid_items(100);
        let a = build(&items, HnswParams::default());
        let b = build(&items, HnswParams::default());
        assert_eq!(a.links(), b.links());
        assert_eq!(a.entry(), b.entry());
        let hits_a = a.search(&[4.2, 7.7], 10);
        let hits_b = b.search(&[4.2, 7.7], 10);
        for (x, y) in hits_a.iter().zip(&hits_b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn different_seed_changes_the_graph() {
        let items = grid_items(100);
        let a = build(&items, HnswParams::default());
        let b = build(
            &items,
            HnswParams {
                seed: 1234,
                ..HnswParams::default()
            },
        );
        assert_ne!(a.links(), b.links(), "seed must drive layer assignment");
    }

    #[test]
    fn max_ef_search_agrees_with_flat_exactly() {
        let items = grid_items(100);
        let idx = build(
            &items,
            HnswParams {
                ef_search: 100,
                ..HnswParams::default()
            },
        );
        let mut flat = FlatIndex::new(2, Metric::Euclidean);
        for (id, v) in &items {
            flat.add(*id, v).unwrap();
        }
        for q in [[0.0f32, 0.0], [3.3, 8.1], [9.0, 9.0]] {
            let a = idx.search(&q, 10);
            let b = flat.search(&q, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "query {q:?}");
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn graph_search_costs_fewer_evals_than_exhaustive() {
        let items = grid_items(100);
        let idx = build(
            &items,
            HnswParams {
                ef_search: 8,
                ..HnswParams::default()
            },
        );
        let (hits, evals) = idx.search_with_stats(&[5.0, 5.0], 3);
        assert_eq!(hits.len(), 3);
        assert!(evals < 100, "beam search must not scan everything");
        assert!(evals > 0);
    }

    #[test]
    fn from_parts_roundtrip_searches_identically() {
        let items = grid_items(100);
        let idx = build(&items, HnswParams::default());
        let postings: Vec<(u64, Vec<f32>)> = idx.iter().map(|(id, v)| (id, v.to_vec())).collect();
        let restored = HnswIndex::from_parts(
            2,
            Metric::Euclidean,
            idx.params(),
            postings,
            idx.links().to_vec(),
            idx.entry(),
        )
        .unwrap();
        for q in [[0.0f32, 0.0], [6.5, 2.5]] {
            let a = idx.search(&q, 5);
            let b = restored.search(&q, 5);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_graphs() {
        let items = grid_items(10);
        let idx = build(&items, HnswParams::default());
        let postings: Vec<(u64, Vec<f32>)> = idx.iter().map(|(id, v)| (id, v.to_vec())).collect();
        // Link pointing out of bounds.
        let mut bad = idx.links().to_vec();
        bad[0][0].push(99);
        assert!(matches!(
            HnswIndex::from_parts(
                2,
                Metric::Euclidean,
                idx.params(),
                postings.clone(),
                bad,
                idx.entry()
            ),
            Err(IndexError::NotTrained)
        ));
        // Entry not on the top layer.
        let not_top =
            (0..idx.len() as u32).find(|&i| idx.links()[i as usize].len() < idx.max_layer() + 1);
        if let Some(wrong) = not_top {
            assert!(matches!(
                HnswIndex::from_parts(
                    2,
                    Metric::Euclidean,
                    idx.params(),
                    postings.clone(),
                    idx.links().to_vec(),
                    Some(wrong)
                ),
                Err(IndexError::NotTrained)
            ));
        }
        // Mismatched lengths.
        assert!(matches!(
            HnswIndex::from_parts(
                2,
                Metric::Euclidean,
                idx.params(),
                postings,
                Vec::new(),
                idx.entry()
            ),
            Err(IndexError::NotTrained)
        ));
    }

    #[test]
    fn empty_training_set_is_an_error() {
        let r = HnswIndex::train(2, Metric::Cosine, HnswParams::default(), &[]);
        assert!(matches!(
            r,
            Err(IndexError::InsufficientTrainingData { .. })
        ));
    }

    #[test]
    fn duplicate_ids_and_dim_mismatch_rejected() {
        let a: &[f32] = &[1.0, 0.0];
        let bad: &[f32] = &[1.0];
        assert!(matches!(
            HnswIndex::train(2, Metric::Cosine, HnswParams::default(), &[(1, a), (1, a)]),
            Err(IndexError::DuplicateId(1))
        ));
        assert!(matches!(
            HnswIndex::train(2, Metric::Cosine, HnswParams::default(), &[(1, bad)]),
            Err(IndexError::DimMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn single_item_index_works() {
        let v: &[f32] = &[1.0, 2.0];
        let idx = HnswIndex::train(2, Metric::Cosine, HnswParams::default(), &[(7, v)]).unwrap();
        let hits = idx.search(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
        assert_eq!(
            idx.max_layer(),
            idx.links()[idx.entry().unwrap() as usize].len() - 1
        );
    }

    #[test]
    fn layer_assignment_is_geometric_and_capped() {
        let mut top = 0;
        for i in 0..10_000u64 {
            let l = assigned_layer(42, i, 16);
            assert!(l <= MAX_LAYER);
            top = top.max(l);
        }
        // With m=16 and 10k draws, at least one node should leave layer 0
        // and none should get anywhere near the cap.
        assert!(top >= 1);
        assert!(top < 8);
    }

    #[test]
    fn search_with_k_zero_or_empty_query_set() {
        let items = grid_items(10);
        let idx = build(&items, HnswParams::default());
        assert!(idx.search(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn incremental_add_matches_batch_train_exactly() {
        let items = grid_items(100);
        let all_at_once = build(&items, HnswParams::default());
        let mut grown = build(&items[..60], HnswParams::default());
        for (id, v) in &items[60..] {
            grown.add(*id, v).unwrap();
        }
        assert_eq!(grown.links(), all_at_once.links());
        assert_eq!(grown.entry(), all_at_once.entry());
        let a = grown.search(&[4.2, 7.7], 10);
        let b = all_at_once.search(&[4.2, 7.7], 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn removed_id_never_surfaces_but_still_routes() {
        let mut idx = build(
            &grid_items(100),
            HnswParams {
                ef_search: 8,
                ..HnswParams::default()
            },
        );
        assert!(!idx.remove(43).unwrap());
        assert_eq!(idx.len(), 99);
        assert_eq!(idx.tombstones(), &[43]);
        assert_eq!(idx.iter_all().count(), 100, "dead node stays in graph");
        let hits = idx.search(&[3.0, 4.0], 5);
        assert!(hits.iter().all(|h| h.id != 43));
        assert_eq!(hits.len(), 5, "live neighbours fill the k window");
    }

    #[test]
    fn remove_unknown_or_dead_id_is_an_error_and_id_stays_reserved() {
        let mut idx = build(&grid_items(20), HnswParams::default());
        assert_eq!(idx.remove(999).unwrap_err(), IndexError::UnknownId(999));
        idx.remove(7).unwrap();
        assert_eq!(idx.remove(7).unwrap_err(), IndexError::UnknownId(7));
        assert_eq!(
            idx.add(7, &[0.0, 0.0]).unwrap_err(),
            IndexError::DuplicateId(7)
        );
    }

    #[test]
    fn compaction_rebuilds_and_mutation_sequences_are_deterministic() {
        let items = grid_items(32);
        let run = || {
            let mut idx = build(&items, HnswParams::default());
            let mut compacted = false;
            for id in 0..8u64 {
                compacted |= idx.remove(id).unwrap();
            }
            (idx, compacted)
        };
        let (a, compacted) = run();
        let (b, _) = run();
        assert!(compacted, "8 of 32 tombstones must trip compaction");
        assert!(a.tombstones().is_empty());
        assert_eq!(a.len(), 24);
        assert_eq!(a.iter_all().count(), 24, "rebuild drops dead nodes");
        assert_eq!(a.links(), b.links());
        assert_eq!(a.entry(), b.entry());
        // The compacted graph is exactly a fresh train over the survivors.
        let survivors: Vec<(u64, Vec<f32>)> = items[8..].to_vec();
        let fresh = build(&survivors, HnswParams::default());
        assert_eq!(a.links(), fresh.links());
        // Compacted ids are free again.
        let mut a = a;
        a.add(0, &[50.0, 50.0]).unwrap();
        assert_eq!(a.search(&[50.0, 50.0], 1)[0].id, 0);
    }

    #[test]
    fn exhaustive_fallback_scans_live_only() {
        let items = grid_items(20);
        let mut idx = build(
            &items,
            HnswParams {
                ef_search: 64,
                ..HnswParams::default()
            },
        );
        idx.remove(3).unwrap();
        let (hits, evals) = idx.search_with_stats(&[3.0, 0.0], 20);
        assert_eq!(evals, 19, "dead vectors are not scored in the fallback");
        assert_eq!(hits.len(), 19);
        assert!(hits.iter().all(|h| h.id != 3));
    }
}
