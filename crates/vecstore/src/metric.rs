//! Scoring metrics with a uniform "higher is better" convention.

use lim_embed::similarity;

/// Similarity metric used to score candidates during search.
///
/// All metrics are exposed as *scores* where **larger means more similar**,
/// so Euclidean distance is negated. This keeps top-k selection identical
/// across metrics and matches how the controller consumes similarity values
/// (mean top-k score thresholded at 0.5 — meaningful for [`Metric::Cosine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Cosine similarity in `[-1, 1]`. The paper's choice.
    #[default]
    Cosine,
    /// Raw inner product (use when vectors are pre-normalised).
    InnerProduct,
    /// Negated Euclidean distance, in `(-inf, 0]`.
    Euclidean,
}

impl Metric {
    /// Scores `query` against `candidate`; higher is more similar.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn score(self, query: &[f32], candidate: &[f32]) -> f32 {
        match self {
            Metric::Cosine => similarity::cosine(query, candidate),
            Metric::InnerProduct => similarity::dot(query, candidate),
            Metric::Euclidean => -similarity::euclidean(query, candidate),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Metric::Cosine => "cosine",
            Metric::InnerProduct => "inner-product",
            Metric::Euclidean => "euclidean",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_scores_higher_for_aligned() {
        let q = [1.0, 0.0];
        assert!(Metric::Cosine.score(&q, &[1.0, 0.0]) > Metric::Cosine.score(&q, &[0.0, 1.0]));
    }

    #[test]
    fn euclidean_score_is_negated_distance() {
        let s = Metric::Euclidean.score(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((s + 5.0).abs() < 1e-6);
    }

    #[test]
    fn identical_vectors_are_best_under_all_metrics() {
        let q = [0.6, 0.8];
        let far = [0.0, -1.0];
        for m in [Metric::Cosine, Metric::InnerProduct, Metric::Euclidean] {
            assert!(m.score(&q, &q) >= m.score(&q, &far), "metric {m}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Metric::Cosine.to_string(), "cosine");
        assert_eq!(Metric::default(), Metric::Cosine);
    }
}
