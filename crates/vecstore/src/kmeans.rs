//! Deterministic k-means++ used by the IVF coarse quantizer and available
//! to other crates (e.g. as a clustering baseline).

use lim_embed::similarity::euclidean_sq;

/// Output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// `k` centroids, each of the input dimensionality.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment for every input vector.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f32,
    /// Number of Lloyd iterations actually run.
    pub iterations: usize,
}

/// Runs seeded k-means++ followed by Lloyd iterations.
///
/// Fully deterministic for a given `(data, k, seed)`: initial centroids are
/// chosen by the k-means++ D² rule driven by a SplitMix64 stream.
///
/// # Panics
///
/// Panics if `k == 0`, if `data` is empty, or if rows have uneven lengths.
pub fn kmeans(data: &[Vec<f32>], k: usize, seed: u64, max_iters: usize) -> KmeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!data.is_empty(), "kmeans requires at least one vector");
    let dim = data[0].len();
    assert!(
        data.iter().all(|v| v.len() == dim),
        "all vectors must share one dimensionality"
    );
    let k = k.min(data.len());

    let mut centroids = init_plus_plus(data, k, seed);
    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;

    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, v) in data.iter().enumerate() {
            let best = nearest(v, &centroids).0;
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in data.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, x) in sums[assignments[i]].iter_mut().zip(v) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for (cc, s) in c.iter_mut().zip(sum) {
                    *cc = s / *count as f32;
                }
            }
            // Empty clusters keep their previous centroid; with k-means++
            // initialisation this is rare and harmless at our scales.
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    let inertia = data
        .iter()
        .enumerate()
        .map(|(i, v)| euclidean_sq(v, &centroids[assignments[i]]))
        .sum();

    KmeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

/// Returns `(index, squared distance)` of the centroid nearest to `v`.
pub(crate) fn nearest(v: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = euclidean_sq(v, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn init_plus_plus(data: &[Vec<f32>], k: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SplitMix64::new(seed);
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.next_below(data.len() as u64) as usize].clone());
    while centroids.len() < k {
        let dists: Vec<f32> = data.iter().map(|v| nearest(v, &centroids).1).collect();
        let total: f32 = dists.iter().sum();
        let next = if total <= f32::EPSILON {
            // All points coincide with chosen centroids; pick uniformly.
            rng.next_below(data.len() as u64) as usize
        } else {
            let mut target = rng.next_f32() * total;
            let mut chosen = data.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                if target <= *d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(data[next].clone());
    }
    centroids
}

/// Small deterministic PRNG (SplitMix64) so this crate needs no `rand`
/// dependency in its public path.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..10 {
            data.push(vec![0.0 + 0.01 * i as f32, 0.0]);
            data.push(vec![10.0 + 0.01 * i as f32, 10.0]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let r = kmeans(&two_blobs(), 2, 42, 50);
        // All even indices (first blob) share a cluster, odds the other.
        let first = r.assignments[0];
        let second = r.assignments[1];
        assert_ne!(first, second);
        assert!(r.assignments.iter().step_by(2).all(|a| *a == first));
        assert!(r
            .assignments
            .iter()
            .skip(1)
            .step_by(2)
            .all(|a| *a == second));
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kmeans(&two_blobs(), 2, 7, 50);
        let b = kmeans(&two_blobs(), 2, 7, 50);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_data_len() {
        let data = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&data, 10, 1, 10);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 2.0]];
        let r = kmeans(&data, 1, 1, 10);
        assert!((r.centroids[0][0] - 1.0).abs() < 1e-6);
        assert!((r.centroids[0][1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn identical_points_are_fine() {
        let data = vec![vec![3.0, 3.0]; 8];
        let r = kmeans(&data, 3, 9, 10);
        assert_eq!(r.assignments.len(), 8);
        assert!(r.inertia < 1e-6);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = kmeans(&[vec![1.0]], 0, 1, 10);
    }
}
