//! Cross-module and property tests.

use crate::{FlatIndex, HnswIndex, HnswParams, IvfIndex, IvfParams, Metric, VectorIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A clustered random catalog: `n` vectors in `dim`-d space scattered
/// around 8 well-separated centers — the regime IVF is designed for.
fn clustered_catalog(seed: u64, n: usize, dim: usize) -> Vec<(u64, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..dim).map(|_| rng.random_range(-50.0f32..50.0)).collect())
        .collect();
    (0..n as u64)
        .map(|id| {
            let c = &centers[rng.random_range(0..centers.len())];
            let v = c
                .iter()
                .map(|x| x + rng.random_range(-1.5f32..1.5))
                .collect();
            (id, v)
        })
        .collect()
}

fn flat_from(dim: usize, metric: Metric, items: &[(u64, Vec<f32>)]) -> FlatIndex {
    let mut flat = FlatIndex::new(dim, metric);
    for (id, v) in items {
        flat.add(*id, v).unwrap();
    }
    flat
}

#[test]
fn flat_and_exhaustive_ivf_agree() {
    // With nprobe == nlist the IVF index must return exactly the flat result.
    let vectors: Vec<(u64, Vec<f32>)> = (0..40u64)
        .map(|i| {
            let x = (i as f32 * 0.37).sin();
            let y = (i as f32 * 0.73).cos();
            (i, vec![x, y, x * y])
        })
        .collect();
    let refs: Vec<(u64, &[f32])> = vectors.iter().map(|(i, v)| (*i, v.as_slice())).collect();

    let mut flat = FlatIndex::new(3, Metric::Cosine);
    for (id, v) in &refs {
        flat.add(*id, v).unwrap();
    }
    let ivf = IvfIndex::train(
        3,
        Metric::Cosine,
        IvfParams {
            nlist: 5,
            nprobe: 5,
            seed: 11,
        },
        &refs,
    )
    .unwrap();

    for q in [[0.1f32, 0.2, 0.3], [-0.5, 0.5, 0.0], [1.0, 0.0, 0.0]] {
        let f: Vec<u64> = flat.search(&q, 5).iter().map(|n| n.id).collect();
        let a: Vec<u64> = ivf.search(&q, 5).iter().map(|n| n.id).collect();
        assert_eq!(f, a, "query {q:?}");
    }
}

#[test]
fn ivf_recall_on_clustered_data() {
    // The regime IVF is built for: well-separated blobs. With a quarter of
    // the cells probed, recall@1 must stay high because queries land near
    // blob centroids.
    let mut data: Vec<(u64, Vec<f32>)> = Vec::new();
    for blob in 0..8u64 {
        let cx = (blob % 4) as f32 * 20.0;
        let cy = (blob / 4) as f32 * 20.0;
        for i in 0..25u64 {
            let id = blob * 25 + i;
            data.push((
                id,
                vec![cx + (i as f32 * 0.07).sin(), cy + (i as f32 * 0.13).cos()],
            ));
        }
    }
    let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
    let ivf = IvfIndex::train(
        2,
        Metric::Euclidean,
        IvfParams {
            nlist: 8,
            nprobe: 2,
            seed: 5,
        },
        &refs,
    )
    .unwrap();
    let mut flat = FlatIndex::new(2, Metric::Euclidean);
    for (id, v) in &refs {
        flat.add(*id, v).unwrap();
    }
    let mut agree = 0;
    let total = 40;
    for q in 0..total {
        let query = vec![(q % 4) as f32 * 20.0 + 0.3, (q % 2) as f32 * 20.0 + 0.2];
        let exact = flat.search(&query, 1)[0].id;
        let approx = ivf.search(&query, 1)[0].id;
        agree += u32::from(exact == approx);
    }
    assert!(
        agree as f64 / f64::from(total) > 0.9,
        "recall@1 = {agree}/{total}"
    );
}

#[test]
fn trait_object_usage() {
    let mut flat = FlatIndex::new(2, Metric::Cosine);
    flat.add(1, &[1.0, 0.0]).unwrap();
    let boxed: Box<dyn VectorIndex> = Box::new(flat);
    assert_eq!(boxed.len(), 1);
    assert_eq!(boxed.search(&[1.0, 0.0], 1)[0].id, 1);
}

#[test]
fn arc_shared_index_searches_across_threads() {
    // The serving engine's pattern: one read-only index built once,
    // Arc-shared by every worker. `Arc<FlatIndex>` is itself a
    // `VectorIndex`, so generic consumers take it without unwrapping.
    let data = clustered_catalog(9, 128, 4);
    let shared = std::sync::Arc::new(flat_from(4, Metric::Cosine, &data));
    fn top1(index: &impl VectorIndex, q: &[f32]) -> u64 {
        index.search(q, 1)[0].id
    }
    let baseline: Vec<u64> = data.iter().map(|(_, v)| top1(&&*shared, v)).collect();
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let idx = std::sync::Arc::clone(&shared);
                let data = &data;
                scope.spawn(move || {
                    data.iter()
                        .map(|(_, v)| top1(&idx, v))
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    for worker in results {
        assert_eq!(worker, baseline);
    }
}

#[test]
fn tie_break_is_score_desc_then_id_asc_in_both_indexes() {
    // Eight identical vectors → every hit ties at the same score. The
    // flat index sees them in scrambled insertion order; the IVF index
    // scatters them across whatever cells k-means produced. Both must
    // return ascending ids (the canonical `Neighbor::ranking_cmp` order).
    let tied: Vec<(u64, Vec<f32>)> = [7u64, 3, 5, 0, 6, 1, 4, 2]
        .iter()
        .map(|id| (*id, vec![1.0f32, 1.0, 1.0]))
        .collect();
    // Distant decoys give the IVF quantizer distinct cells to build.
    let mut catalog = tied.clone();
    catalog.extend((100..116u64).map(|id| (id, vec![-40.0 + id as f32, 60.0, -25.0])));

    let flat = flat_from(3, Metric::Cosine, &catalog);
    let refs: Vec<(u64, &[f32])> = catalog.iter().map(|(i, v)| (*i, v.as_slice())).collect();
    let ivf = IvfIndex::train(
        3,
        Metric::Cosine,
        IvfParams {
            nlist: 6,
            nprobe: 6,
            seed: 42,
        },
        &refs,
    )
    .unwrap();

    let query = [1.0f32, 1.0, 1.0];
    let flat_ids: Vec<u64> = flat.search(&query, 8).iter().map(|n| n.id).collect();
    let ivf_ids: Vec<u64> = ivf.search(&query, 8).iter().map(|n| n.id).collect();
    assert_eq!(flat_ids, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(ivf_ids, flat_ids, "IVF must use the same tie-break");
}

proptest! {
    /// Flat search is exact: the top hit is always the argmax of the metric.
    #[test]
    fn flat_top1_is_argmax(
        vectors in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 4), 1..20),
        query in prop::collection::vec(-1.0f32..1.0, 4),
    ) {
        let mut idx = FlatIndex::new(4, Metric::Euclidean);
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i as u64, v).unwrap();
        }
        let hits = idx.search(&query, 1);
        let brute_best = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, Metric::Euclidean.score(&query, v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| b.0.cmp(&a.0)))
            .unwrap();
        prop_assert_eq!(hits[0].id, brute_best.0);
    }

    /// Scores come back sorted, best first.
    #[test]
    fn search_results_sorted(
        vectors in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3), 2..24),
        k in 1usize..8,
    ) {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i as u64, v).unwrap();
        }
        let hits = idx.search(&[0.5, 0.5, 0.5], k);
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        prop_assert!(hits.len() <= k);
    }

    /// On clustered random catalogs up to 4096 vectors, probing half the
    /// cells keeps recall@10 against the exact flat scan at or above 0.9.
    #[test]
    fn ivf_recall_at_10_is_at_least_090(seed in 0u64..500, size_ix in 0usize..5) {
        let n = [64usize, 200, 512, 1024, 4096][size_ix];
        let dim = 8;
        let data = clustered_catalog(seed, n, dim);
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let flat = flat_from(dim, Metric::Euclidean, &data);
        let ivf = IvfIndex::train(
            dim,
            Metric::Euclidean,
            IvfParams { nlist: 16, nprobe: 8, seed },
            &refs,
        ).unwrap();

        let k = 10;
        let queries = 16;
        let mut found = 0usize;
        let mut wanted = 0usize;
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..queries {
            let (_, base) = &data[probe_rng.random_range(0..data.len())];
            let query: Vec<f32> = base
                .iter()
                .map(|x| x + probe_rng.random_range(-0.5f32..0.5))
                .collect();
            let exact: Vec<u64> = flat.search(&query, k).iter().map(|h| h.id).collect();
            let approx: Vec<u64> = ivf.search(&query, k).iter().map(|h| h.id).collect();
            wanted += exact.len();
            found += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = found as f64 / wanted as f64;
        prop_assert!(recall >= 0.9, "recall@{} = {:.3} on n={}", k, recall, n);
    }

    /// With `nprobe == nlist` every cell is scanned, so the IVF result must
    /// agree with the flat index *exactly* — same ids, same scores, same
    /// order — on random catalogs up to 4096 vectors.
    #[test]
    fn ivf_exact_agreement_when_nprobe_equals_nlist(seed in 0u64..500, size_ix in 0usize..5) {
        let n = [64usize, 200, 512, 1024, 4096][size_ix];
        let dim = 8;
        let data = clustered_catalog(seed.wrapping_add(7_000), n, dim);
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let flat = flat_from(dim, Metric::Cosine, &data);
        let ivf = IvfIndex::train(
            dim,
            Metric::Cosine,
            IvfParams { nlist: 12, nprobe: 12, seed },
            &refs,
        ).unwrap();
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        for _ in 0..8 {
            let (_, base) = &data[probe_rng.random_range(0..data.len())];
            prop_assert_eq!(flat.search(base, 16), ivf.search(base, 16));
        }
    }

    /// On the same clustered catalogs, the HNSW graph with default
    /// construction parameters keeps recall@10 against the exact flat
    /// scan at or above 0.95 — the bar the ann bench curve gates on.
    #[test]
    fn hnsw_recall_at_10_is_at_least_095(seed in 0u64..500, size_ix in 0usize..5) {
        let n = [64usize, 200, 512, 1024, 4096][size_ix];
        let dim = 8;
        let data = clustered_catalog(seed.wrapping_add(13_000), n, dim);
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let flat = flat_from(dim, Metric::Euclidean, &data);
        let hnsw = HnswIndex::train(
            dim,
            Metric::Euclidean,
            HnswParams { seed, ..HnswParams::default() },
            &refs,
        ).unwrap();

        let k = 10;
        let queries = 16;
        let mut found = 0usize;
        let mut wanted = 0usize;
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        for _ in 0..queries {
            let (_, base) = &data[probe_rng.random_range(0..data.len())];
            let query: Vec<f32> = base
                .iter()
                .map(|x| x + probe_rng.random_range(-0.5f32..0.5))
                .collect();
            let exact: Vec<u64> = flat.search(&query, k).iter().map(|h| h.id).collect();
            let approx: Vec<u64> = hnsw.search(&query, k).iter().map(|h| h.id).collect();
            wanted += exact.len();
            found += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = found as f64 / wanted as f64;
        prop_assert!(recall >= 0.95, "recall@{} = {:.3} on n={}", k, recall, n);
    }

    /// With `ef_search >= len` the HNSW search falls back to an exact
    /// scan, so the result must agree with the flat index *exactly* —
    /// same ids, same scores, same order.
    #[test]
    fn hnsw_exact_agreement_at_max_ef_search(seed in 0u64..500, size_ix in 0usize..5) {
        let n = [64usize, 200, 512, 1024, 4096][size_ix];
        let dim = 8;
        let data = clustered_catalog(seed.wrapping_add(21_000), n, dim);
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let flat = flat_from(dim, Metric::Cosine, &data);
        let hnsw = HnswIndex::train(
            dim,
            Metric::Cosine,
            HnswParams { ef_search: n, seed, ..HnswParams::default() },
            &refs,
        ).unwrap();
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0xACE5);
        for _ in 0..8 {
            let (_, base) = &data[probe_rng.random_range(0..data.len())];
            prop_assert_eq!(flat.search(base, 16), hnsw.search(base, 16));
        }
    }

    /// Live mutation keeps the recall bars: after a seeded interleaving of
    /// removes and fresh inserts applied identically to all three kinds,
    /// every index returns only live ids, agrees on the live count, and
    /// IVF/HNSW recall@10 against an exact scan over the live set stays at
    /// the static-catalog floors (0.9 / 0.95).
    #[test]
    fn mutated_indexes_return_only_live_ids_and_keep_recall(
        seed in 0u64..200,
        churn in 8usize..48,
    ) {
        let n = 512usize;
        let dim = 8;
        let data = clustered_catalog(seed.wrapping_add(33_000), n, dim);
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let mut flat = flat_from(dim, Metric::Euclidean, &data);
        let mut ivf = IvfIndex::train(
            dim,
            Metric::Euclidean,
            IvfParams { nlist: 16, nprobe: 8, seed },
            &refs,
        ).unwrap();
        let mut hnsw = HnswIndex::train(
            dim,
            Metric::Euclidean,
            HnswParams { seed, ..HnswParams::default() },
            &refs,
        ).unwrap();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let mut live: Vec<(u64, Vec<f32>)> = data.clone();
        let mut next_id = n as u64;
        for _ in 0..churn {
            if rng.random_range(0..3u32) == 0 {
                let pos = rng.random_range(0..live.len());
                let (id, _) = live.swap_remove(pos);
                flat.remove(id).unwrap();
                ivf.remove(id).unwrap();
                hnsw.remove(id).unwrap();
            } else {
                // Stay in the clustered regime: new tools land near an
                // existing one, the way real catalog revisions do.
                let base = &data[rng.random_range(0..data.len())].1;
                let v: Vec<f32> = base
                    .iter()
                    .map(|x| x + rng.random_range(-1.5f32..1.5))
                    .collect();
                flat.add(next_id, &v).unwrap();
                ivf.add(next_id, &v).unwrap();
                hnsw.add(next_id, &v).unwrap();
                live.push((next_id, v));
                next_id += 1;
            }
        }

        let exact = flat_from(dim, Metric::Euclidean, &live);
        prop_assert_eq!(flat.len(), live.len());
        prop_assert_eq!(ivf.len(), live.len());
        prop_assert_eq!(hnsw.len(), live.len());

        let k = 10;
        let queries = 16;
        let mut ivf_found = 0usize;
        let mut hnsw_found = 0usize;
        let mut wanted = 0usize;
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0xFEED);
        let live_ids: Vec<u64> = live.iter().map(|(id, _)| *id).collect();
        for _ in 0..queries {
            let (_, base) = &live[probe_rng.random_range(0..live.len())];
            let query: Vec<f32> = base
                .iter()
                .map(|x| x + probe_rng.random_range(-0.5f32..0.5))
                .collect();
            let exact_ids: Vec<u64> = exact.search(&query, k).iter().map(|h| h.id).collect();
            let flat_ids: Vec<u64> = flat.search(&query, k).iter().map(|h| h.id).collect();
            // The mutated flat index must stay exact.
            prop_assert_eq!(&flat_ids, &exact_ids);
            let ivf_ids: Vec<u64> = ivf.search(&query, k).iter().map(|h| h.id).collect();
            let hnsw_ids: Vec<u64> = hnsw.search(&query, k).iter().map(|h| h.id).collect();
            for id in ivf_ids.iter().chain(&hnsw_ids) {
                prop_assert!(live_ids.contains(id), "tombstoned id {} surfaced", id);
            }
            wanted += exact_ids.len();
            ivf_found += exact_ids.iter().filter(|id| ivf_ids.contains(id)).count();
            hnsw_found += exact_ids.iter().filter(|id| hnsw_ids.contains(id)).count();
        }
        let ivf_recall = ivf_found as f64 / wanted as f64;
        let hnsw_recall = hnsw_found as f64 / wanted as f64;
        prop_assert!(ivf_recall >= 0.9, "ivf recall@10 = {:.3} after churn", ivf_recall);
        prop_assert!(hnsw_recall >= 0.95, "hnsw recall@10 = {:.3} after churn", hnsw_recall);
    }

    /// IVF recall@1 with half the cells probed stays reasonable on clustered
    /// data (the regime it is designed for) — and never errors or panics.
    #[test]
    fn ivf_search_is_well_formed(seed in 0u64..1000) {
        let data: Vec<(u64, Vec<f32>)> = (0..60u64)
            .map(|i| {
                let blob = (i % 3) as f32 * 10.0;
                (i, vec![blob + (i as f32 * 0.01), blob])
            })
            .collect();
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let idx = IvfIndex::train(
            2,
            Metric::Euclidean,
            IvfParams { nlist: 6, nprobe: 3, seed },
            &refs,
        ).unwrap();
        let hits = idx.search(&[0.0, 0.0], 5);
        prop_assert!(!hits.is_empty());
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
