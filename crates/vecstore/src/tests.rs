//! Cross-module and property tests.

use crate::{FlatIndex, IvfIndex, IvfParams, Metric, VectorIndex};
use proptest::prelude::*;

#[test]
fn flat_and_exhaustive_ivf_agree() {
    // With nprobe == nlist the IVF index must return exactly the flat result.
    let vectors: Vec<(u64, Vec<f32>)> = (0..40u64)
        .map(|i| {
            let x = (i as f32 * 0.37).sin();
            let y = (i as f32 * 0.73).cos();
            (i, vec![x, y, x * y])
        })
        .collect();
    let refs: Vec<(u64, &[f32])> = vectors.iter().map(|(i, v)| (*i, v.as_slice())).collect();

    let mut flat = FlatIndex::new(3, Metric::Cosine);
    for (id, v) in &refs {
        flat.add(*id, v).unwrap();
    }
    let ivf = IvfIndex::train(
        3,
        Metric::Cosine,
        IvfParams {
            nlist: 5,
            nprobe: 5,
            seed: 11,
        },
        &refs,
    )
    .unwrap();

    for q in [[0.1f32, 0.2, 0.3], [-0.5, 0.5, 0.0], [1.0, 0.0, 0.0]] {
        let f: Vec<u64> = flat.search(&q, 5).iter().map(|n| n.id).collect();
        let a: Vec<u64> = ivf.search(&q, 5).iter().map(|n| n.id).collect();
        assert_eq!(f, a, "query {q:?}");
    }
}

#[test]
fn ivf_recall_on_clustered_data() {
    // The regime IVF is built for: well-separated blobs. With a quarter of
    // the cells probed, recall@1 must stay high because queries land near
    // blob centroids.
    let mut data: Vec<(u64, Vec<f32>)> = Vec::new();
    for blob in 0..8u64 {
        let cx = (blob % 4) as f32 * 20.0;
        let cy = (blob / 4) as f32 * 20.0;
        for i in 0..25u64 {
            let id = blob * 25 + i;
            data.push((
                id,
                vec![cx + (i as f32 * 0.07).sin(), cy + (i as f32 * 0.13).cos()],
            ));
        }
    }
    let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
    let ivf = IvfIndex::train(
        2,
        Metric::Euclidean,
        IvfParams {
            nlist: 8,
            nprobe: 2,
            seed: 5,
        },
        &refs,
    )
    .unwrap();
    let mut flat = FlatIndex::new(2, Metric::Euclidean);
    for (id, v) in &refs {
        flat.add(*id, v).unwrap();
    }
    let mut agree = 0;
    let total = 40;
    for q in 0..total {
        let query = vec![(q % 4) as f32 * 20.0 + 0.3, (q % 2) as f32 * 20.0 + 0.2];
        let exact = flat.search(&query, 1)[0].id;
        let approx = ivf.search(&query, 1)[0].id;
        agree += u32::from(exact == approx);
    }
    assert!(
        agree as f64 / f64::from(total) > 0.9,
        "recall@1 = {agree}/{total}"
    );
}

#[test]
fn trait_object_usage() {
    let mut flat = FlatIndex::new(2, Metric::Cosine);
    flat.add(1, &[1.0, 0.0]).unwrap();
    let boxed: Box<dyn VectorIndex> = Box::new(flat);
    assert_eq!(boxed.len(), 1);
    assert_eq!(boxed.search(&[1.0, 0.0], 1)[0].id, 1);
}

proptest! {
    /// Flat search is exact: the top hit is always the argmax of the metric.
    #[test]
    fn flat_top1_is_argmax(
        vectors in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 4), 1..20),
        query in prop::collection::vec(-1.0f32..1.0, 4),
    ) {
        let mut idx = FlatIndex::new(4, Metric::Euclidean);
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i as u64, v).unwrap();
        }
        let hits = idx.search(&query, 1);
        let brute_best = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, Metric::Euclidean.score(&query, v)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| b.0.cmp(&a.0)))
            .unwrap();
        prop_assert_eq!(hits[0].id, brute_best.0);
    }

    /// Scores come back sorted, best first.
    #[test]
    fn search_results_sorted(
        vectors in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3), 2..24),
        k in 1usize..8,
    ) {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i as u64, v).unwrap();
        }
        let hits = idx.search(&[0.5, 0.5, 0.5], k);
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        prop_assert!(hits.len() <= k);
    }

    /// IVF recall@1 with half the cells probed stays reasonable on clustered
    /// data (the regime it is designed for) — and never errors or panics.
    #[test]
    fn ivf_search_is_well_formed(seed in 0u64..1000) {
        let data: Vec<(u64, Vec<f32>)> = (0..60u64)
            .map(|i| {
                let blob = (i % 3) as f32 * 10.0;
                (i, vec![blob + (i as f32 * 0.01), blob])
            })
            .collect();
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        let idx = IvfIndex::train(
            2,
            Metric::Euclidean,
            IvfParams { nlist: 6, nprobe: 3, seed },
            &refs,
        ).unwrap();
        let hits = idx.search(&[0.0, 0.0], 5);
        prop_assert!(!hits.is_empty());
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
