//! JSON (de)serialization of the vector indexes.
//!
//! Snapshots (`lim/snapshot-v1`, see `lim_core::persist`) ship prebuilt
//! indexes to the device instead of rebuilding them per process, the way
//! TinyAgent ships its precomputed retrieval index. Both index kinds
//! round-trip losslessly: vectors are stored as JSON numbers (f32 → f64
//! widening is exact, and the writer emits shortest-round-trip decimals),
//! so a restored index returns bit-identical scores and orderings.
//!
//! Documents are self-describing via a `kind` tag (`"flat"` / `"ivf"` /
//! `"hnsw"`), so a snapshot section can carry any kind and the loader
//! dispatches. Unknown *fields* are ignored (additive evolution); an
//! unknown `kind` is an error.

use std::error::Error;
use std::fmt;

use lim_json::Value;

use crate::{FlatIndex, HnswIndex, HnswParams, IvfIndex, IvfParams, Metric, VectorIndex};

/// Error raised when an index document cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeIndexError {
    /// What was wrong with the document.
    pub message: String,
}

impl fmt::Display for DecodeIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode index: {}", self.message)
    }
}

impl Error for DecodeIndexError {}

fn err(message: impl Into<String>) -> DecodeIndexError {
    DecodeIndexError {
        message: message.into(),
    }
}

impl Metric {
    /// Stable serialization label (the `Display` string).
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Parses a label produced by [`Metric::label`].
    ///
    /// # Errors
    ///
    /// Returns the offending text on an unknown label.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "cosine" => Ok(Metric::Cosine),
            "inner-product" => Ok(Metric::InnerProduct),
            "euclidean" => Ok(Metric::Euclidean),
            other => Err(format!("unknown metric {other:?}")),
        }
    }
}

/// Serializes an `f32` slice as exact JSON numbers (`f32` → `f64`
/// widening is lossless, and the writer emits shortest-round-trip
/// decimals). Shared by every snapshot serializer in the workspace so
/// the encoding rule lives in one place.
pub fn floats_to_json(values: &[f32]) -> Value {
    values.iter().map(|v| Value::from(f64::from(*v))).collect()
}

/// Inverse of [`floats_to_json`]; `what` names the vector in errors.
///
/// # Errors
///
/// Returns [`DecodeIndexError`] when `doc` is not an array of numbers.
pub fn floats_from_json(doc: &Value, what: &str) -> Result<Vec<f32>, DecodeIndexError> {
    doc.as_array()
        .ok_or_else(|| err(format!("{what} must be an array")))?
        .iter()
        .map(|v| v.as_f64().map(|x| x as f32))
        .collect::<Option<Vec<f32>>>()
        .ok_or_else(|| err(format!("{what} components must be numbers")))
}

fn posting_to_json(id: u64, vector: &[f32]) -> Value {
    Value::object([
        ("id", Value::from(id as i64)),
        ("v", floats_to_json(vector)),
    ])
}

fn posting_from_json(doc: &Value, what: &str) -> Result<(u64, Vec<f32>), DecodeIndexError> {
    let id = doc
        .get("id")
        .and_then(Value::as_i64)
        .ok_or_else(|| err(format!("{what} missing id")))? as u64;
    let vector = floats_from_json(
        doc.get("v")
            .ok_or_else(|| err(format!("{what} missing v")))?,
        what,
    )?;
    Ok((id, vector))
}

/// Appends the tombstone list (removal order) when there is one. Emitted
/// only when non-empty so documents of unmutated indexes are byte-for-byte
/// what older writers produced (the field is additive).
fn insert_deleted(doc: &mut Value, deleted: &[u64]) {
    if !deleted.is_empty() {
        doc.insert(
            "deleted",
            deleted.iter().map(|id| Value::from(*id as i64)).collect(),
        );
    }
}

/// Reads the optional tombstone list; absent means none.
fn deleted_from_json(doc: &Value) -> Result<Vec<u64>, DecodeIndexError> {
    match doc.get("deleted") {
        None => Ok(Vec::new()),
        Some(list) => list
            .as_array()
            .ok_or_else(|| err("deleted must be an array"))?
            .iter()
            .map(|v| {
                v.as_i64()
                    .filter(|x| *x >= 0)
                    .map(|x| x as u64)
                    .ok_or_else(|| err("deleted entries must be ids"))
            })
            .collect(),
    }
}

/// Replays a persisted removal list against a freshly decoded index.
///
/// A writer compacts the moment the threshold trips, so a persisted
/// tombstone count is always strictly below it — if a replayed removal
/// reports a compaction the document cannot have come from a writer, and
/// restoring it would not reproduce the saved state bit-for-bit.
fn replay_deleted<E>(
    deleted: &[u64],
    mut remove: impl FnMut(u64) -> Result<bool, E>,
) -> Result<(), DecodeIndexError>
where
    E: fmt::Display,
{
    for &id in deleted {
        match remove(id) {
            Ok(false) => {}
            Ok(true) => {
                return Err(err(
                    "deleted list at or above the compaction threshold".to_string()
                ))
            }
            Err(e) => return Err(err(format!("deleted id {id}: {e}"))),
        }
    }
    Ok(())
}

fn header(kind: &str, dim: usize, metric: Metric) -> [(&'static str, Value); 3] {
    [
        ("kind", Value::from(kind.to_owned())),
        ("dim", Value::from(dim)),
        ("metric", Value::from(metric.label())),
    ]
}

fn decode_header(doc: &Value) -> Result<(String, usize, Metric), DecodeIndexError> {
    let kind = doc
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing kind tag"))?;
    let dim = doc
        .get("dim")
        .and_then(Value::as_i64)
        .filter(|d| *d > 0)
        .ok_or_else(|| err("missing positive dim"))? as usize;
    let metric = Metric::parse(
        doc.get("metric")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing metric"))?,
    )
    .map_err(err)?;
    Ok((kind.to_owned(), dim, metric))
}

/// Serializes a [`FlatIndex`] into a self-describing JSON document.
///
/// Tombstoned entries are captured exactly: postings are the full stored
/// sequence ([`FlatIndex::iter_all`]) and a `deleted` field carries the
/// removal order, so a restored index is bit-for-bit the saved one.
pub fn flat_to_json(index: &FlatIndex) -> Value {
    let mut doc = Value::object(header("flat", index.dim(), index.metric()));
    doc.insert(
        "postings",
        index
            .iter_all()
            .map(|(id, v)| posting_to_json(id, v))
            .collect(),
    );
    insert_deleted(&mut doc, index.tombstones());
    doc
}

/// Reconstructs a [`FlatIndex`] from a [`flat_to_json`] document.
///
/// # Errors
///
/// Returns [`DecodeIndexError`] on a wrong `kind` tag, missing members,
/// malformed vectors, dimension mismatches or duplicate ids.
pub fn flat_from_json(doc: &Value) -> Result<FlatIndex, DecodeIndexError> {
    let (kind, dim, metric) = decode_header(doc)?;
    if kind != "flat" {
        return Err(err(format!("expected kind \"flat\", found {kind:?}")));
    }
    let mut index = FlatIndex::new(dim, metric);
    for posting in doc
        .get("postings")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing postings"))?
    {
        let (id, vector) = posting_from_json(posting, "posting")?;
        index
            .add(id, &vector)
            .map_err(|e| err(format!("posting id {id}: {e}")))?;
    }
    replay_deleted(&deleted_from_json(doc)?, |id| index.remove(id))?;
    Ok(index)
}

/// Serializes an [`IvfIndex`] — coarse centroids plus per-cell postings —
/// so a restored index probes identically without re-running k-means.
/// Cells include tombstoned postings; a `deleted` field carries the
/// removal order so the restored index skips exactly the same entries.
pub fn ivf_to_json(index: &IvfIndex) -> Value {
    let params = index.params();
    let mut doc = Value::object(header("ivf", index.dim(), index.metric()));
    doc.insert(
        "params",
        Value::object([
            ("nlist", Value::from(params.nlist)),
            ("nprobe", Value::from(params.nprobe)),
            ("seed", Value::from(params.seed as i64)),
        ]),
    );
    doc.insert(
        "centroids",
        index
            .centroids()
            .iter()
            .map(|c| floats_to_json(c))
            .collect(),
    );
    doc.insert(
        "cells",
        index
            .cells()
            .iter()
            .map(|cell| {
                cell.iter()
                    .map(|(id, v)| posting_to_json(*id, v))
                    .collect::<Value>()
            })
            .collect(),
    );
    insert_deleted(&mut doc, index.tombstones());
    doc
}

/// Reconstructs an [`IvfIndex`] from an [`ivf_to_json`] document.
///
/// # Errors
///
/// Returns [`DecodeIndexError`] on a wrong `kind` tag, missing members,
/// malformed vectors, dimension mismatches or duplicate ids.
pub fn ivf_from_json(doc: &Value) -> Result<IvfIndex, DecodeIndexError> {
    let (kind, dim, metric) = decode_header(doc)?;
    if kind != "ivf" {
        return Err(err(format!("expected kind \"ivf\", found {kind:?}")));
    }
    let params_doc = doc.get("params").ok_or_else(|| err("missing params"))?;
    let get = |key: &str| {
        params_doc
            .get(key)
            .and_then(Value::as_i64)
            .ok_or_else(|| err(format!("params missing {key}")))
    };
    let params = IvfParams {
        nlist: get("nlist")? as usize,
        nprobe: get("nprobe")? as usize,
        seed: get("seed")? as u64,
    };
    let centroids = doc
        .get("centroids")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing centroids"))?
        .iter()
        .map(|c| floats_from_json(c, "centroid"))
        .collect::<Result<Vec<Vec<f32>>, _>>()?;
    let mut cells = Vec::new();
    for cell in doc
        .get("cells")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing cells"))?
    {
        let postings = cell
            .as_array()
            .ok_or_else(|| err("cell must be an array"))?
            .iter()
            .map(|p| posting_from_json(p, "cell posting"))
            .collect::<Result<Vec<(u64, Vec<f32>)>, _>>()?;
        cells.push(postings);
    }
    let mut index = IvfIndex::from_parts(dim, metric, params, centroids, cells)
        .map_err(|e| err(e.to_string()))?;
    replay_deleted(&deleted_from_json(doc)?, |id| index.remove(id))?;
    Ok(index)
}

/// Serializes an [`HnswIndex`] — postings in insertion order plus the full
/// per-node, per-layer adjacency and the entry point — so a restored index
/// traverses the graph bit-identically without rebuilding it.
///
/// Postings are the full node sequence including tombstoned entries
/// ([`HnswIndex::iter_all`]) — links refer to node indices, so dead nodes
/// must keep their slots — and a `deleted` field carries the removal order.
pub fn hnsw_to_json(index: &HnswIndex) -> Value {
    let params = index.params();
    let mut doc = Value::object(header("hnsw", index.dim(), index.metric()));
    doc.insert(
        "params",
        Value::object([
            ("m", Value::from(params.m)),
            ("ef_construction", Value::from(params.ef_construction)),
            ("ef_search", Value::from(params.ef_search)),
            ("seed", Value::from(params.seed as i64)),
        ]),
    );
    doc.insert(
        "postings",
        index
            .iter_all()
            .map(|(id, v)| posting_to_json(id, v))
            .collect(),
    );
    doc.insert(
        "links",
        index
            .links()
            .iter()
            .map(|layers| {
                layers
                    .iter()
                    .map(|peers| {
                        peers
                            .iter()
                            .map(|p| Value::from(*p as i64))
                            .collect::<Value>()
                    })
                    .collect::<Value>()
            })
            .collect(),
    );
    doc.insert(
        "entry",
        match index.entry() {
            Some(e) => Value::from(e as i64),
            None => Value::Null,
        },
    );
    insert_deleted(&mut doc, index.tombstones());
    doc
}

/// Reconstructs an [`HnswIndex`] from an [`hnsw_to_json`] document.
///
/// # Errors
///
/// Returns [`DecodeIndexError`] on a wrong `kind` tag, missing members,
/// malformed vectors or adjacency lists, dimension mismatches, duplicate
/// ids, or a structurally invalid graph (dangling links, bad entry point).
pub fn hnsw_from_json(doc: &Value) -> Result<HnswIndex, DecodeIndexError> {
    let (kind, dim, metric) = decode_header(doc)?;
    if kind != "hnsw" {
        return Err(err(format!("expected kind \"hnsw\", found {kind:?}")));
    }
    let params_doc = doc.get("params").ok_or_else(|| err("missing params"))?;
    let get = |key: &str| {
        params_doc
            .get(key)
            .and_then(Value::as_i64)
            .ok_or_else(|| err(format!("params missing {key}")))
    };
    let params = HnswParams {
        m: get("m")? as usize,
        ef_construction: get("ef_construction")? as usize,
        ef_search: get("ef_search")? as usize,
        seed: get("seed")? as u64,
    };
    if params.m < 2 {
        return Err(err("params m must be at least 2"));
    }
    let postings = doc
        .get("postings")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing postings"))?
        .iter()
        .map(|p| posting_from_json(p, "posting"))
        .collect::<Result<Vec<(u64, Vec<f32>)>, _>>()?;
    let mut links = Vec::new();
    for layers in doc
        .get("links")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing links"))?
    {
        let layers = layers
            .as_array()
            .ok_or_else(|| err("node links must be an array of layers"))?
            .iter()
            .map(|peers| {
                peers
                    .as_array()
                    .ok_or_else(|| err("layer links must be an array"))?
                    .iter()
                    .map(|p| {
                        p.as_i64()
                            .filter(|v| *v >= 0 && *v <= u32::MAX as i64)
                            .map(|v| v as u32)
                            .ok_or_else(|| err("link targets must be node indices"))
                    })
                    .collect::<Result<Vec<u32>, _>>()
            })
            .collect::<Result<Vec<Vec<u32>>, _>>()?;
        links.push(layers);
    }
    let entry = match doc.get("entry") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .filter(|e| *e >= 0 && *e <= u32::MAX as i64)
                .map(|e| e as u32)
                .ok_or_else(|| err("entry must be a node index"))?,
        ),
    };
    let mut index = HnswIndex::from_parts(dim, metric, params, postings, links, entry)
        .map_err(|e| err(e.to_string()))?;
    replay_deleted(&deleted_from_json(doc)?, |id| index.remove(id))?;
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorIndex;

    fn flat_sample() -> FlatIndex {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        idx.add(10, &[1.0, 0.25, -0.5]).unwrap();
        idx.add(20, &[0.0, 1.0, 0.125]).unwrap();
        idx.add(30, &[0.75, 0.0, 0.625]).unwrap();
        idx
    }

    fn ivf_sample() -> IvfIndex {
        let data: Vec<(u64, Vec<f32>)> = (0..64u64)
            .map(|i| (i, vec![(i % 8) as f32 + 0.125, (i / 8) as f32]))
            .collect();
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        IvfIndex::train(2, Metric::Euclidean, IvfParams::default(), &refs).unwrap()
    }

    #[test]
    fn flat_roundtrip_is_bit_identical() {
        let idx = flat_sample();
        let restored = flat_from_json(&flat_to_json(&idx)).expect("roundtrip");
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.metric(), idx.metric());
        for ((a_id, a_v), (b_id, b_v)) in restored.iter().zip(idx.iter()) {
            assert_eq!(a_id, b_id);
            assert_eq!(a_v, b_v, "vectors must round-trip exactly");
        }
    }

    #[test]
    fn flat_roundtrip_through_text_searches_identically() {
        let idx = flat_sample();
        let text = flat_to_json(&idx).to_string();
        let restored = flat_from_json(&lim_json::parse(&text).unwrap()).unwrap();
        let query = [0.9, 0.3, 0.1];
        let a = idx.search(&query, 3);
        let b = restored.search(&query, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "scores bit-equal");
        }
    }

    #[test]
    fn ivf_roundtrip_preserves_cells_and_search() {
        let idx = ivf_sample();
        let text = ivf_to_json(&idx).to_string();
        let restored = ivf_from_json(&lim_json::parse(&text).unwrap()).expect("roundtrip");
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.cell_count(), idx.cell_count());
        assert_eq!(restored.params(), idx.params());
        for q in [[0.0f32, 0.0], [3.2, 4.1], [7.0, 7.0]] {
            let a = idx.search(&q, 5);
            let b = restored.search(&q, 5);
            assert_eq!(a.len(), b.len(), "query {q:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    fn hnsw_sample() -> HnswIndex {
        let data: Vec<(u64, Vec<f32>)> = (0..64u64)
            .map(|i| (i, vec![(i % 8) as f32 + 0.125, (i / 8) as f32]))
            .collect();
        let refs: Vec<(u64, &[f32])> = data.iter().map(|(i, v)| (*i, v.as_slice())).collect();
        HnswIndex::train(2, Metric::Euclidean, HnswParams::default(), &refs).unwrap()
    }

    #[test]
    fn hnsw_roundtrip_preserves_graph_and_search() {
        let idx = hnsw_sample();
        let text = hnsw_to_json(&idx).to_string();
        let restored = hnsw_from_json(&lim_json::parse(&text).unwrap()).expect("roundtrip");
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.params(), idx.params());
        assert_eq!(restored.links(), idx.links());
        assert_eq!(restored.entry(), idx.entry());
        for q in [[0.0f32, 0.0], [3.2, 4.1], [7.0, 7.0]] {
            let a = idx.search(&q, 5);
            let b = restored.search(&q, 5);
            assert_eq!(a.len(), b.len(), "query {q:?}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn hnsw_encoding_is_byte_deterministic() {
        let a = hnsw_to_json(&hnsw_sample()).to_string();
        let b = hnsw_to_json(&hnsw_sample()).to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn hnsw_decode_rejects_corrupt_documents() {
        for field in ["params", "postings", "links", "entry"] {
            let mut broken = hnsw_to_json(&hnsw_sample());
            broken.insert(field, Value::Null);
            // A nulled entry is "no entry point", which from_parts rejects
            // for a non-empty graph; the rest fail in the decoder itself.
            assert!(hnsw_from_json(&broken).is_err(), "nulled {field}");
        }
        let mut dangling = hnsw_to_json(&hnsw_sample());
        dangling.insert("links", Value::from(5));
        assert!(hnsw_from_json(&dangling).is_err(), "links must be an array");
    }

    #[test]
    fn decode_rejects_wrong_kind_and_corrupt_documents() {
        let flat = flat_to_json(&flat_sample());
        let ivf = ivf_to_json(&ivf_sample());
        let hnsw = hnsw_to_json(&hnsw_sample());
        assert!(flat_from_json(&ivf).is_err(), "kind mismatch");
        assert!(ivf_from_json(&flat).is_err(), "kind mismatch");
        assert!(hnsw_from_json(&flat).is_err(), "kind mismatch");
        assert!(flat_from_json(&hnsw).is_err(), "kind mismatch");

        for field in ["kind", "dim", "metric", "postings"] {
            let mut broken = flat_to_json(&flat_sample());
            broken.insert(field, Value::Null);
            assert!(flat_from_json(&broken).is_err(), "nulled {field}");
        }
        for field in ["params", "centroids", "cells"] {
            let mut broken = ivf_to_json(&ivf_sample());
            broken.insert(field, Value::Null);
            assert!(ivf_from_json(&broken).is_err(), "nulled {field}");
        }
        let mut bad_metric = flat_to_json(&flat_sample());
        bad_metric.insert("metric", Value::from("hamming"));
        assert!(flat_from_json(&bad_metric).is_err());
    }

    #[test]
    fn decode_rejects_duplicate_ids_and_dim_mismatches() {
        let mut doc = flat_to_json(&flat_sample());
        let postings = doc.get("postings").unwrap().as_array().unwrap().to_vec();
        let mut dup = postings.clone();
        dup.push(postings[0].clone());
        doc.insert("postings", dup.into_iter().collect::<Value>());
        assert!(flat_from_json(&doc).is_err(), "duplicate id");

        let mut doc = flat_to_json(&flat_sample());
        doc.insert("dim", Value::from(2));
        assert!(flat_from_json(&doc).is_err(), "vector/dim mismatch");
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let mut doc = flat_to_json(&flat_sample());
        doc.insert("future_field", Value::from("ignored"));
        assert!(flat_from_json(&doc).is_ok());
    }

    #[test]
    fn mutated_flat_roundtrip_preserves_tombstones_exactly() {
        let mut idx = flat_sample();
        idx.remove(20).unwrap();
        idx.add(40, &[0.5, 0.5, 0.5]).unwrap();
        let text = flat_to_json(&idx).to_string();
        let restored = flat_from_json(&lim_json::parse(&text).unwrap()).unwrap();
        assert_eq!(restored.tombstones(), idx.tombstones());
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.iter_all().count(), idx.iter_all().count());
        let a = idx.search(&[0.9, 0.3, 0.1], 4);
        let b = restored.search(&[0.9, 0.3, 0.1], 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn mutated_ivf_and_hnsw_roundtrip_search_identically() {
        let mut ivf = ivf_sample();
        ivf.remove(5).unwrap();
        ivf.remove(17).unwrap();
        ivf.add(100, &[3.5, 3.5]).unwrap();
        let restored = ivf_from_json(&lim_json::parse(&ivf_to_json(&ivf).to_string()).unwrap())
            .expect("ivf roundtrip");
        assert_eq!(restored.tombstones(), ivf.tombstones());
        assert_eq!(restored.len(), ivf.len());

        let mut hnsw = hnsw_sample();
        hnsw.remove(5).unwrap();
        hnsw.add(100, &[3.5, 3.5]).unwrap();
        let restored_h =
            hnsw_from_json(&lim_json::parse(&hnsw_to_json(&hnsw).to_string()).unwrap())
                .expect("hnsw roundtrip");
        assert_eq!(restored_h.tombstones(), hnsw.tombstones());
        assert_eq!(restored_h.links(), hnsw.links());
        for q in [[0.0f32, 0.0], [3.2, 4.1]] {
            for (x, y) in ivf.search(&q, 5).iter().zip(&restored.search(&q, 5)) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
            for (x, y) in hnsw.search(&q, 5).iter().zip(&restored_h.search(&q, 5)) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn corrupt_deleted_lists_are_rejected() {
        let mut idx = flat_sample();
        idx.remove(20).unwrap();
        // deleted naming an id that is not stored
        let mut doc = flat_to_json(&idx);
        doc.insert("deleted", [Value::from(999)].into_iter().collect());
        assert!(flat_from_json(&doc).is_err(), "unknown deleted id");
        // deleted that is not an array
        let mut doc = flat_to_json(&idx);
        doc.insert("deleted", Value::from("nope"));
        assert!(flat_from_json(&doc).is_err(), "deleted must be an array");
        // duplicate tombstone (second removal of a dead id)
        let mut doc = flat_to_json(&idx);
        doc.insert(
            "deleted",
            [Value::from(20), Value::from(20)].into_iter().collect(),
        );
        assert!(flat_from_json(&doc).is_err(), "double tombstone");
    }
}
