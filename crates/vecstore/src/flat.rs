//! Brute-force exact index.

use crate::neighbor::top_k;
use crate::{IndexError, Metric, Neighbor, VectorIndex};

/// Exact k-NN index that scans every stored vector.
///
/// This is what FAISS's `IndexFlat` does, and at tool-catalog scale it is
/// both the fastest and the simplest correct choice. Vectors are stored in
/// one contiguous buffer for cache-friendly scans.
///
/// # Examples
///
/// ```
/// use lim_vecstore::{FlatIndex, Metric, VectorIndex};
///
/// # fn main() -> Result<(), lim_vecstore::IndexError> {
/// let mut index = FlatIndex::new(2, Metric::Cosine);
/// index.add(0, &[1.0, 0.0])?;
/// index.add(1, &[0.0, 1.0])?;
/// assert_eq!(index.len(), 2);
/// assert_eq!(index.search(&[1.0, 0.1], 1)[0].id, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>,
    /// Tombstoned ids in removal order; still present in `ids`/`data`
    /// until compaction rewrites the buffers.
    deleted: Vec<u64>,
}

impl FlatIndex {
    /// Creates an empty index for `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "index dimension must be positive");
        Self {
            dim,
            metric,
            ids: Vec::new(),
            data: Vec::new(),
            deleted: Vec::new(),
        }
    }

    /// The metric this index scores with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Adds a vector under `id`.
    ///
    /// # Errors
    ///
    /// * [`IndexError::DimMismatch`] if `vector.len() != dim`.
    /// * [`IndexError::DuplicateId`] if `id` was already added — including
    ///   ids that are tombstoned but not yet compacted away.
    pub fn add(&mut self, id: u64, vector: &[f32]) -> Result<(), IndexError> {
        if vector.len() != self.dim {
            return Err(IndexError::DimMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        if self.ids.contains(&id) {
            return Err(IndexError::DuplicateId(id));
        }
        self.ids.push(id);
        self.data.extend_from_slice(vector);
        Ok(())
    }

    /// Tombstones `id`: it disappears from every search, iteration, and
    /// `get` immediately, but its slot stays reserved until compaction.
    ///
    /// Returns `true` when the removal tripped [`crate::compaction_due`]
    /// and the buffers were rewritten in place (dropping every tombstone).
    ///
    /// # Errors
    ///
    /// [`IndexError::UnknownId`] if `id` was never added or is already
    /// tombstoned.
    pub fn remove(&mut self, id: u64) -> Result<bool, IndexError> {
        if !self.ids.contains(&id) || self.deleted.contains(&id) {
            return Err(IndexError::UnknownId(id));
        }
        self.deleted.push(id);
        if crate::compaction_due(self.deleted.len(), self.ids.len()) {
            self.compact();
            return Ok(true);
        }
        Ok(false)
    }

    /// Tombstoned ids in removal order (empty right after a compaction).
    pub fn tombstones(&self) -> &[u64] {
        &self.deleted
    }

    /// Rewrites the buffers keeping only live vectors, in their original
    /// insertion order, and clears the tombstone list.
    fn compact(&mut self) {
        let dim = self.dim;
        let mut ids = Vec::with_capacity(self.ids.len() - self.deleted.len());
        let mut data = Vec::with_capacity(ids.capacity() * dim);
        for (i, id) in self.ids.iter().enumerate() {
            if !self.deleted.contains(id) {
                ids.push(*id);
                data.extend_from_slice(&self.data[i * dim..(i + 1) * dim]);
            }
        }
        self.ids = ids;
        self.data = data;
        self.deleted.clear();
    }

    /// Adds a batch of `(id, vector)` pairs.
    ///
    /// # Errors
    ///
    /// Stops at — and returns — the first failing insertion; earlier pairs
    /// remain added.
    pub fn add_batch<'a, I>(&mut self, items: I) -> Result<(), IndexError>
    where
        I: IntoIterator<Item = (u64, &'a [f32])>,
    {
        for (id, v) in items {
            self.add(id, v)?;
        }
        Ok(())
    }

    /// Iterates over live `(id, vector)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> + '_ {
        self.iter_all()
            .filter(move |(id, _)| !self.deleted.contains(id))
    }

    /// Iterates over every stored `(id, vector)` pair in insertion order,
    /// including tombstoned entries — the persistence view (see
    /// [`crate::serial`]), which must capture tombstones exactly.
    pub fn iter_all(&self) -> impl Iterator<Item = (u64, &[f32])> + '_ {
        self.ids
            .iter()
            .enumerate()
            .map(move |(i, id)| (*id, &self.data[i * self.dim..(i + 1) * self.dim]))
    }

    /// Returns the stored vector for `id`, if present and live.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        if self.deleted.contains(&id) {
            return None;
        }
        let pos = self.ids.iter().position(|x| *x == id)?;
        Some(&self.data[pos * self.dim..(pos + 1) * self.dim])
    }

    /// Searches and also reports how many vector-distance evaluations the
    /// query cost (always `len()` for an exhaustive scan) — the
    /// machine-independent latency proxy the ann bench gates on.
    pub fn search_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, usize) {
        (self.search(query, k), self.len())
    }
}

impl VectorIndex for FlatIndex {
    /// Number of **live** vectors; tombstoned entries do not count.
    fn len(&self) -> usize {
        self.ids.len() - self.deleted.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let candidates = self
            .iter()
            .map(|(id, v)| Neighbor::new(id, self.metric.score(query, v)))
            .collect();
        top_k(candidates, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlatIndex {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        idx.add(10, &[1.0, 0.0, 0.0]).unwrap();
        idx.add(20, &[0.0, 1.0, 0.0]).unwrap();
        idx.add(30, &[0.0, 0.0, 1.0]).unwrap();
        idx
    }

    #[test]
    fn search_returns_exact_nearest() {
        let idx = sample();
        let hits = idx.search(&[0.8, 0.6, 0.0], 2);
        assert_eq!(hits[0].id, 10);
        assert_eq!(hits[1].id, 20);
    }

    #[test]
    fn search_caps_at_len() {
        let idx = sample();
        assert_eq!(idx.search(&[1.0, 0.0, 0.0], 10).len(), 3);
    }

    #[test]
    fn empty_index_returns_no_hits() {
        let idx = FlatIndex::new(3, Metric::Cosine);
        assert!(idx.search(&[1.0, 0.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        let err = idx.add(1, &[1.0]).unwrap_err();
        assert_eq!(
            err,
            IndexError::DimMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let mut idx = sample();
        assert_eq!(
            idx.add(10, &[1.0, 1.0, 1.0]).unwrap_err(),
            IndexError::DuplicateId(10)
        );
    }

    #[test]
    fn get_retrieves_stored_vector() {
        let idx = sample();
        assert_eq!(idx.get(20), Some(&[0.0, 1.0, 0.0][..]));
        assert_eq!(idx.get(99), None);
    }

    #[test]
    fn batch_add_propagates_errors() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        let a: &[f32] = &[1.0, 0.0];
        let bad: &[f32] = &[1.0];
        let result = idx.add_batch([(1, a), (2, bad)]);
        assert!(result.is_err());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn euclidean_metric_ranks_by_distance() {
        let mut idx = FlatIndex::new(2, Metric::Euclidean);
        idx.add(1, &[0.0, 0.0]).unwrap();
        idx.add(2, &[5.0, 5.0]).unwrap();
        let hits = idx.search(&[1.0, 1.0], 2);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    #[should_panic(expected = "query dimension mismatch")]
    fn search_panics_on_bad_query_dim() {
        let idx = sample();
        let _ = idx.search(&[1.0], 1);
    }

    #[test]
    fn removed_id_vanishes_from_search_len_get_iter() {
        let mut idx = sample();
        assert!(!idx.remove(10).unwrap());
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(10), None);
        assert!(idx.iter().all(|(id, _)| id != 10));
        assert!(idx.search(&[1.0, 0.0, 0.0], 3).iter().all(|h| h.id != 10));
        assert_eq!(idx.tombstones(), &[10]);
        // The full (persistence) view still holds the tombstoned entry.
        assert_eq!(idx.iter_all().count(), 3);
    }

    #[test]
    fn remove_unknown_or_dead_id_is_an_error() {
        let mut idx = sample();
        assert_eq!(idx.remove(99).unwrap_err(), IndexError::UnknownId(99));
        idx.remove(10).unwrap();
        assert_eq!(idx.remove(10).unwrap_err(), IndexError::UnknownId(10));
    }

    #[test]
    fn tombstoned_id_stays_reserved_until_compaction() {
        let mut idx = sample();
        idx.remove(10).unwrap();
        assert_eq!(
            idx.add(10, &[1.0, 1.0, 1.0]).unwrap_err(),
            IndexError::DuplicateId(10)
        );
    }

    #[test]
    fn compaction_trips_at_threshold_and_frees_ids() {
        let mut idx = FlatIndex::new(1, Metric::Euclidean);
        for i in 0..32u64 {
            idx.add(i, &[i as f32]).unwrap();
        }
        for i in 0..7u64 {
            assert!(!idx.remove(i).unwrap(), "below threshold at {i}");
        }
        // 8th tombstone: 8 >= 8 and 8*4 >= 32 → compaction.
        assert!(idx.remove(7).unwrap());
        assert!(idx.tombstones().is_empty());
        assert_eq!(idx.len(), 24);
        assert_eq!(idx.iter_all().count(), 24);
        // Compacted ids are free again.
        idx.add(0, &[100.0]).unwrap();
        assert_eq!(idx.get(0), Some(&[100.0][..]));
    }

    #[test]
    fn compaction_preserves_insertion_order_of_survivors() {
        let mut idx = FlatIndex::new(1, Metric::Euclidean);
        for i in 0..32u64 {
            idx.add(i, &[i as f32]).unwrap();
        }
        for i in (0..16u64).step_by(2) {
            idx.remove(i).unwrap();
        }
        let ids: Vec<u64> = idx.iter().map(|(id, _)| id).collect();
        let expected: Vec<u64> = (0..32u64).filter(|i| i % 2 == 1 || *i >= 16).collect();
        assert_eq!(ids, expected);
    }
}
