//! Search results.

/// One search hit: a stored id and its similarity score.
///
/// Scores follow the [`crate::Metric`] convention: higher is more similar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Caller-assigned identifier of the stored vector.
    pub id: u64,
    /// Similarity score of the hit (higher = closer).
    pub score: f32,
}

impl Neighbor {
    /// Creates a neighbour record.
    pub fn new(id: u64, score: f32) -> Self {
        Self { id, score }
    }
}

/// Keeps the best `k` of a candidate stream, returning them best-first.
///
/// Ties are broken by ascending id so results are fully deterministic.
pub(crate) fn top_k(mut candidates: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_best_first() {
        let hits = top_k(
            vec![
                Neighbor::new(1, 0.2),
                Neighbor::new(2, 0.9),
                Neighbor::new(3, 0.5),
            ],
            2,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn top_k_breaks_ties_by_id() {
        let hits = top_k(vec![Neighbor::new(9, 0.5), Neighbor::new(3, 0.5)], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 9);
    }

    #[test]
    fn top_k_handles_small_inputs() {
        assert!(top_k(vec![], 5).is_empty());
        assert_eq!(top_k(vec![Neighbor::new(1, 1.0)], 5).len(), 1);
    }
}
