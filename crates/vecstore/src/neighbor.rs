//! Search results.

/// One search hit: a stored id and its similarity score.
///
/// Scores follow the [`crate::Metric`] convention: higher is more similar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Caller-assigned identifier of the stored vector.
    pub id: u64,
    /// Similarity score of the hit (higher = closer).
    pub score: f32,
}

impl Neighbor {
    /// Creates a neighbour record.
    pub fn new(id: u64, score: f32) -> Self {
        Self { id, score }
    }

    /// The canonical result ordering shared by every index in this crate:
    /// score descending, ties broken by ascending id.
    ///
    /// Scores compare via [`f32::total_cmp`], so the order is total even
    /// in the presence of NaN and never depends on insertion order
    /// (`FlatIndex`) or cell layout (`IvfIndex`) — the same candidate set
    /// always ranks identically regardless of which index produced it.
    pub fn ranking_cmp(&self, other: &Neighbor) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Keeps the best `k` of a candidate stream, returning them best-first.
///
/// Ordering is [`Neighbor::ranking_cmp`] — (score desc, id asc) — so
/// results are fully deterministic for any candidate arrival order.
pub(crate) fn top_k(mut candidates: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    candidates.sort_by(Neighbor::ranking_cmp);
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_best_first() {
        let hits = top_k(
            vec![
                Neighbor::new(1, 0.2),
                Neighbor::new(2, 0.9),
                Neighbor::new(3, 0.5),
            ],
            2,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn top_k_breaks_ties_by_id() {
        let hits = top_k(vec![Neighbor::new(9, 0.5), Neighbor::new(3, 0.5)], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 9);
    }

    #[test]
    fn top_k_handles_small_inputs() {
        assert!(top_k(vec![], 5).is_empty());
        assert_eq!(top_k(vec![Neighbor::new(1, 1.0)], 5).len(), 1);
    }

    #[test]
    fn ranking_is_independent_of_arrival_order() {
        let tied = [
            Neighbor::new(7, 0.5),
            Neighbor::new(2, 0.5),
            Neighbor::new(5, 0.5),
            Neighbor::new(1, 0.9),
        ];
        let forward = top_k(tied.to_vec(), 4);
        let mut reversed = tied.to_vec();
        reversed.reverse();
        assert_eq!(forward, top_k(reversed, 4));
        let ids: Vec<u64> = forward.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2, 5, 7]);
    }

    #[test]
    fn ranking_cmp_totally_orders_nan_scores() {
        // total_cmp keeps the sort valid even with NaN candidates; NaN
        // compares greater than every real score, so it ranks first but
        // never panics or produces an inconsistent comparator.
        let hits = top_k(
            vec![
                Neighbor::new(1, f32::NAN),
                Neighbor::new(2, 1.0),
                Neighbor::new(3, f32::NAN),
            ],
            3,
        );
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
        assert_eq!(hits[2].id, 2);
    }
}
