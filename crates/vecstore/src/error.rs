//! Error type shared by the indexes.

use std::error::Error;
use std::fmt;

/// Error returned by index mutation and training operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// A vector's dimensionality did not match the index.
    DimMismatch {
        /// Dimension the index was constructed with.
        expected: usize,
        /// Dimension of the offending vector.
        got: usize,
    },
    /// An id was added twice.
    DuplicateId(u64),
    /// A removal named an id the index does not hold live. A tombstoned
    /// id counts as absent for removal but still present for insertion
    /// (it stays reserved until compaction drops it).
    UnknownId(u64),
    /// The operation requires a trained index (see [`crate::IvfIndex::train`]).
    NotTrained,
    /// Training was attempted with fewer vectors than clusters.
    InsufficientTrainingData {
        /// Number of vectors supplied.
        supplied: usize,
        /// Number of clusters requested.
        clusters: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "vector dimension {got} does not match index dimension {expected}"
                )
            }
            IndexError::DuplicateId(id) => write!(f, "id {id} already present in index"),
            IndexError::UnknownId(id) => write!(f, "id {id} not live in index"),
            IndexError::NotTrained => write!(f, "index must be trained before use"),
            IndexError::InsufficientTrainingData { supplied, clusters } => write!(
                f,
                "training needs at least {clusters} vectors, only {supplied} supplied"
            ),
        }
    }
}

impl Error for IndexError {}
