//! In-memory vector store with exact and inverted-file k-NN — the FAISS
//! substitute.
//!
//! The paper's Tool Controller "runs a k-Nearest Neighbors (k-NN) search
//! using FAISS similarity against both Search Level 1 and Level 2". At tool
//! catalog scale (tens to hundreds of vectors) FAISS answers exactly; this
//! crate provides the same interface and semantics:
//!
//! * [`FlatIndex`] — brute-force exact top-k, the default for both levels;
//! * [`IvfIndex`] — an inverted-file index with a deterministic k-means++
//!   coarse quantizer, for the scalability experiments (micro benches sweep
//!   catalog sizes up to 4096);
//! * [`HnswIndex`] — a seeded-deterministic HNSW graph index for 100k-tool
//!   catalog scale, where both exhaustive and probed scans degenerate to
//!   linear work;
//! * [`Metric`] — cosine / inner-product / Euclidean scoring with a uniform
//!   "higher score is better" convention.
//!
//! All three indexes support **live mutation**: incremental `add`
//! (Flat appends, IVF assigns to the nearest coarse centroid, HNSW
//! inserts natively into the graph) and `remove`-as-tombstone.
//! Tombstoned entries are filtered out of every search result and
//! compacted away once they pass the shared [`compaction_due`]
//! threshold; until then the id stays reserved (re-adding it is a
//! [`IndexError::DuplicateId`]). Mutation is deterministic: the same
//! sequence of operations on the same starting index always produces
//! bit-identical search results, which is what lets a serving engine
//! replay a catalog mutation log and converge exactly.
//!
//! # Examples
//!
//! ```
//! use lim_vecstore::{FlatIndex, Metric, VectorIndex};
//!
//! # fn main() -> Result<(), lim_vecstore::IndexError> {
//! let mut index = FlatIndex::new(4, Metric::Cosine);
//! index.add(7, &[1.0, 0.0, 0.0, 0.0])?;
//! index.add(9, &[0.0, 1.0, 0.0, 0.0])?;
//! let hits = index.search(&[0.9, 0.1, 0.0, 0.0], 1);
//! assert_eq!(hits[0].id, 7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod flat;
mod hnsw;
mod ivf;
mod kmeans;
mod metric;
mod neighbor;
pub mod serial;

pub use error::IndexError;
pub use flat::FlatIndex;
pub use hnsw::{HnswIndex, HnswParams};
pub use ivf::{IvfIndex, IvfParams};
pub use kmeans::{kmeans, KmeansResult};
pub use metric::Metric;
pub use neighbor::Neighbor;
pub use serial::{
    flat_from_json, flat_to_json, floats_from_json, floats_to_json, hnsw_from_json, hnsw_to_json,
    ivf_from_json, ivf_to_json, DecodeIndexError,
};

/// Shared compaction threshold for tombstoned entries.
///
/// Returns `true` once an index holding `total` entries (live + dead) has
/// accumulated enough `tombstones` to be worth rewriting: at least 8
/// tombstones **and** at least a quarter of the stored entries dead. Every
/// index checks this after each `remove` and compacts immediately when it
/// trips, so a persisted index is always strictly below the threshold —
/// which is what makes replaying a serialized removal list side-effect-free.
pub fn compaction_due(tombstones: usize, total: usize) -> bool {
    tombstones >= 8 && tombstones * 4 >= total
}

/// Common behaviour of the vector indexes in this crate.
///
/// Object-safe so pipelines can hold `Box<dyn VectorIndex>` and switch
/// between exact and approximate search.
pub trait VectorIndex {
    /// Number of stored vectors.
    fn len(&self) -> usize;

    /// Returns `true` if the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality the index accepts.
    fn dim(&self) -> usize;

    /// Returns the `k` nearest neighbours of `query`, best first.
    ///
    /// Returns fewer than `k` entries when the index is smaller than `k`,
    /// and an empty vector on an empty index.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;
}

/// Shared references search like the index they point to, so a built
/// index can be handed to generic consumers without moving it.
impl<I: VectorIndex + ?Sized> VectorIndex for &I {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        (**self).search(query, k)
    }
}

/// `Arc<I>` searches like `I`: a read-only index built once can be shared
/// across serving workers without cloning its vectors (see `lim-serve`).
impl<I: VectorIndex + ?Sized> VectorIndex for std::sync::Arc<I> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        (**self).search(query, k)
    }
}

#[cfg(test)]
mod tests;
