//! Checkpointing the engine's warm state into `lim/snapshot-v1` files.
//!
//! A *levels* snapshot (written by `lim snapshot build`) lets a booting
//! engine skip the offline level build; a *checkpoint* (written by
//! [`crate::ServeEngine::checkpoint`]) additionally carries everything
//! the engine warmed up online:
//!
//! * the seeded-LRU query-embedding cache and the tool-selection memo,
//!   with entries serialized in **exact LRU order** (least-recent first)
//!   so the restored caches evict identically;
//! * per-session warm-controller state (the session fast path);
//! * lifetime counters, so cache hit rates keep accumulating across
//!   restarts instead of resetting.
//!
//! Restore-then-replay is bit-identical to never restarting: for any
//! trace split, replaying the suffix on a restored engine produces the
//! same deterministic report as replaying it on the engine that never
//! went down (proptest-verified in `tests`). Writers emit deterministic
//! JSON (sessions sorted by id, caches in recency order), so the same
//! engine state always checkpoints to the same bytes.

use std::collections::HashMap;
use std::sync::Arc;

use lim_core::persist::{SECTION_CLUSTERS, SECTION_LEVELS, SECTION_TOOL_INDEX};
use lim_core::{
    levels_from_snapshot_prefixed, snapshot_levels_prefixed, SearchLevel, Snapshot, SnapshotError,
    SnapshotWriter, ToolSelection,
};
use lim_embed::Embedding;
use lim_json::Value;
use lim_llm::ModelProfile;
use lim_vecstore::floats_to_json;
use lim_workloads::Workload;

use lim_core::ServiceLevel;

use crate::cache::{CacheStats, LruCache};
use crate::catalog::{CatalogOp, CatalogRecord};
use crate::engine::{QueryEmbeddings, SelectionSource, ServeConfig, ServeEngine, SessionState};
use crate::fleet::{FleetConfig, FleetEngine};
use crate::governor::GovernorState;

/// Checkpoint section recording the engine configuration and counters.
pub const SECTION_ENGINE: &str = "engine";
/// Checkpoint section holding the query-embedding cache.
pub const SECTION_EMBED_CACHE: &str = "embed_cache";
/// Checkpoint section holding the tool-selection memo.
pub const SECTION_MEMO: &str = "memo";
/// Checkpoint section holding per-session warm-controller state.
pub const SECTION_SESSIONS: &str = "sessions";
/// Checkpoint section holding the live-catalog mutation log. Written
/// only when the catalog was actually mutated (epoch > 0), so snapshots
/// of never-mutated engines are byte-identical to the pre-catalog
/// format — and older readers, which treat unknown sections as errors,
/// fail safe on churned snapshots instead of silently dropping the log.
pub const SECTION_CATALOG: &str = "catalog_log";
/// Checkpoint section holding the energy governor's live state: the
/// current service rung, the virtual clock, and the resident
/// sliding-window `(arrival, joules)` samples. Always written — the
/// sustained-watts estimator runs even when no cap is set — so a warm
/// boot converges to the byte with the engine that never restarted.
pub const SECTION_GOVERNOR: &str = "governor";
/// Fleet-checkpoint section recording the tenancy state: tenant count,
/// cache budgets and floors, the rebalance cadence, and the cumulative
/// per-tenant traffic weights the partition policy derives capacities
/// from. Present only in fleet checkpoints, so a single-engine boot
/// handed a fleet file fails safe with an unknown-section error instead
/// of silently restoring one tenant.
pub const SECTION_FLEET: &str = "fleet";

/// Every section a serving boot understands. A snapshot carrying any
/// other section is rejected (unknown sections are an error).
pub const KNOWN_SECTIONS: &[&str] = &[
    SECTION_LEVELS,
    SECTION_TOOL_INDEX,
    SECTION_CLUSTERS,
    SECTION_ENGINE,
    SECTION_EMBED_CACHE,
    SECTION_MEMO,
    SECTION_SESSIONS,
    SECTION_CATALOG,
    SECTION_GOVERNOR,
];

fn section_err(section: &str, message: impl Into<String>) -> SnapshotError {
    SnapshotError::Section {
        section: section.to_owned(),
        message: message.into(),
    }
}

/// Rejects a snapshot whose recorded workload identity disagrees with
/// the workload the engine is being booted over.
pub(crate) fn validate_workload(
    snapshot: &Snapshot,
    workload: &Workload,
) -> Result<(), SnapshotError> {
    let field = |key: &str| snapshot.header_field(key);
    if let Some(benchmark) = field("benchmark").and_then(Value::as_str) {
        if benchmark != workload.name {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot is for benchmark {benchmark:?} but the engine serves {:?}",
                workload.name
            )));
        }
    } else {
        return Err(SnapshotError::Header("missing benchmark".into()));
    }
    let checks = [
        ("tool_count", workload.registry.len()),
        ("pool_size", workload.queries.len()),
        ("train_size", workload.train_queries.len()),
    ];
    for (key, ours) in checks {
        if let Some(theirs) = field(key).and_then(Value::as_i64) {
            if theirs as usize != ours {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot records {key} {theirs} but the workload has {ours}"
                )));
            }
        }
    }
    Ok(())
}

/// Rejects a checkpoint written under a different engine configuration:
/// cached values are functions of the model, quant, policy and seed, so
/// restoring them into a differently configured engine would serve
/// answers that engine would never have computed.
pub(crate) fn validate_engine(
    snapshot: &Snapshot,
    model: &ModelProfile,
    config: &ServeConfig,
    prefix: &str,
) -> Result<(), SnapshotError> {
    let section = format!("{prefix}{SECTION_ENGINE}");
    let doc = snapshot.section(&section)?;
    let text = |key: &str| {
        doc.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| section_err(&section, format!("missing {key}")))
    };
    let int = |key: &str| {
        doc.get(key)
            .and_then(Value::as_i64)
            .ok_or_else(|| section_err(&section, format!("missing {key}")))
    };
    let expect = [
        ("model", model.name.to_owned()),
        ("quant", config.quant.label().to_owned()),
        ("policy", config.policy.label()),
        ("device", config.device.label().to_owned()),
    ];
    for (key, ours) in expect {
        let theirs = text(key)?;
        if theirs != ours {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint was written with {key} {theirs:?} but the engine runs {ours:?}"
            )));
        }
    }
    // Cached values are independent of the governor knobs, but the
    // virtual-clock window the governor section carries is not — compare
    // against the *normalized* knobs, the form every assembled engine
    // (and therefore every checkpoint) carries.
    let governor = config.governor.normalized();
    let numeric = [
        ("seed", config.seed as i64),
        ("carbon_seed", governor.carbon_seed as i64),
        ("embed_cache_capacity", config.embed_cache_capacity as i64),
        ("memo_capacity", config.memo_capacity as i64),
    ];
    for (key, ours) in numeric {
        let theirs = int(key)?;
        if theirs != ours {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint was written with {key} {theirs} but the engine runs {ours}"
            )));
        }
    }
    let float = |key: &str| {
        doc.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| section_err(&section, format!("missing {key}")))
    };
    let floats = [
        ("power_cap_w", governor.power_cap_w),
        ("governor_window_s", governor.window_s),
        ("carbon_budget_g_per_h", governor.carbon_budget_g_per_h),
    ];
    for (key, ours) in floats {
        let theirs = float(key)?;
        if theirs != ours {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint was written with {key} {theirs} but the engine runs {ours}"
            )));
        }
    }
    Ok(())
}

/// Encodes the engine's full state as a `kind: "checkpoint"` snapshot.
pub(crate) fn write_checkpoint(engine: &ServeEngine) -> Vec<u8> {
    let mut writer = SnapshotWriter::new("checkpoint");
    checkpoint_header(&mut writer, engine);
    engine_sections(engine, &mut writer, "");
    writer.encode()
}

/// Writes the workload-identity header fields a boot validates against.
fn checkpoint_header(writer: &mut SnapshotWriter, engine: &ServeEngine) {
    writer.header_field("benchmark", Value::from(engine.workload.name));
    // The header records the *base* catalog size — what the workload a
    // booting process constructs from the benchmark generator has. Tools
    // registered live are not in that base; the catalog_log section
    // replays them on top at boot.
    writer.header_field(
        "tool_count",
        Value::from(engine.workload.registry.len() - engine.catalog.registered as usize),
    );
    writer.header_field("pool_size", Value::from(engine.workload.queries.len()));
    writer.header_field(
        "train_size",
        Value::from(engine.workload.train_queries.len()),
    );
    writer.header_field("dim", Value::from(engine.levels.embedder().dim()));
}

/// Writes one engine's full section set under `prefix` — `""` for a
/// standalone checkpoint, `"t{i}."` for tenant `i` of a fleet.
fn engine_sections(engine: &ServeEngine, writer: &mut SnapshotWriter, prefix: &str) {
    snapshot_levels_prefixed(&engine.levels, writer, prefix);
    writer.add_section(
        &format!("{prefix}{SECTION_ENGINE}"),
        &engine_to_json(engine),
    );
    writer.add_section(
        &format!("{prefix}{SECTION_EMBED_CACHE}"),
        &cache_to_json(&engine.embed_cache, embeddings_to_json),
    );
    writer.add_section(
        &format!("{prefix}{SECTION_MEMO}"),
        &cache_to_json(&engine.memo, selection_to_json),
    );
    writer.add_section(
        &format!("{prefix}{SECTION_SESSIONS}"),
        &sessions_to_json(&engine.sessions),
    );
    writer.add_section(
        &format!("{prefix}{SECTION_GOVERNOR}"),
        &governor_to_json(&engine.governor),
    );
    if engine.epoch > 0 {
        writer.add_section(
            &format!("{prefix}{SECTION_CATALOG}"),
            &catalog_to_json(engine),
        );
    }
}

/// Serializes the live-catalog state: epoch, churn bookkeeping, lifetime
/// counters and the full mutation log in order.
fn catalog_to_json(engine: &ServeEngine) -> Value {
    Value::object([
        ("epoch", Value::from(engine.epoch as i64)),
        (
            "churn_since_refresh",
            Value::from(engine.churn_since_refresh as i64),
        ),
        (
            "counters",
            Value::object([
                ("registered", Value::from(engine.catalog.registered as i64)),
                ("retired", Value::from(engine.catalog.retired as i64)),
                (
                    "compactions",
                    Value::from(engine.catalog.compactions as i64),
                ),
                (
                    "cluster_refreshes",
                    Value::from(engine.catalog.cluster_refreshes as i64),
                ),
                (
                    "memo_invalidations",
                    Value::from(engine.catalog.memo_invalidations as i64),
                ),
            ]),
        ),
        (
            "records",
            engine
                .catalog_log
                .iter()
                .map(CatalogRecord::to_json)
                .collect(),
        ),
    ])
}

/// Replays a snapshot's `catalog_log` section into a freshly assembled
/// engine: registers every logged tool into the workload registry (the
/// levels sections already carry the mutated vector state, so nothing is
/// re-embedded), restores the retired set, and adopts the epoch, churn
/// bookkeeping and lifetime counters. A snapshot without the section is
/// a never-mutated catalog — nothing to do.
///
/// Validation is strict and typed: records must be contiguous from
/// `seq` 1 with `epoch_after == seq`, the count must equal the recorded
/// epoch, the counters must agree with the log, registered names must be
/// fresh, and retired ids must be in-range and unrepeated. A corrupt,
/// reordered or truncated log is a [`SnapshotError::Section`], never a
/// silently different catalog.
pub(crate) fn apply_catalog_log(
    snapshot: &Snapshot,
    engine: &mut ServeEngine,
    prefix: &str,
) -> Result<(), SnapshotError> {
    let section = format!("{prefix}{SECTION_CATALOG}");
    if snapshot.section_len(&section).is_none() {
        return Ok(());
    }
    let doc = snapshot.section(&section)?;
    let int = |doc: &Value, key: &str| {
        doc.get(key)
            .and_then(Value::as_i64)
            .filter(|x| *x >= 0)
            .ok_or_else(|| section_err(&section, format!("missing or negative {key}")))
    };
    let epoch = int(doc, "epoch")? as u64;
    let churn_since_refresh = int(doc, "churn_since_refresh")? as u64;
    let counters_doc = doc
        .get("counters")
        .ok_or_else(|| section_err(&section, "missing counters"))?;
    let counters = crate::catalog::CatalogCounters {
        registered: int(counters_doc, "registered")? as u64,
        retired: int(counters_doc, "retired")? as u64,
        compactions: int(counters_doc, "compactions")? as u64,
        cluster_refreshes: int(counters_doc, "cluster_refreshes")? as u64,
        memo_invalidations: int(counters_doc, "memo_invalidations")? as u64,
    };
    let mut records = Vec::new();
    for (i, entry) in doc
        .get("records")
        .and_then(Value::as_array)
        .ok_or_else(|| section_err(&section, "missing records"))?
        .iter()
        .enumerate()
    {
        let record = CatalogRecord::from_json(entry)
            .map_err(|e| section_err(&section, format!("record {i}: {e}")))?;
        let expected = i as u64 + 1;
        if record.seq != expected {
            return Err(section_err(
                SECTION_CATALOG,
                format!(
                    "record {i} has seq {}, expected {expected}; the log must be \
                     contiguous and in order",
                    record.seq
                ),
            ));
        }
        if record.epoch_after != record.seq {
            return Err(section_err(
                SECTION_CATALOG,
                format!(
                    "record {i} claims epoch {} after seq {}; every mutation bumps \
                     the epoch by exactly one",
                    record.epoch_after, record.seq
                ),
            ));
        }
        records.push(record);
    }
    if records.len() as u64 != epoch {
        return Err(section_err(
            SECTION_CATALOG,
            format!(
                "{} records disagree with recorded epoch {epoch}",
                records.len()
            ),
        ));
    }
    let registers = records
        .iter()
        .filter(|r| matches!(r.op, CatalogOp::Register(_)))
        .count() as u64;
    if counters.registered != registers || counters.retired != epoch - registers {
        return Err(section_err(
            SECTION_CATALOG,
            format!(
                "counters record {} registrations and {} retirements but the log \
                 holds {registers} and {}",
                counters.registered,
                counters.retired,
                epoch - registers
            ),
        ));
    }

    // Replay. Registration order fixes each tool's dense index; the
    // levels sections already hold the mutated vectors, so only the
    // registry and the retired set move here.
    let workload = Arc::make_mut(&mut engine.workload);
    let mut retired: Vec<usize> = Vec::new();
    for record in &records {
        match &record.op {
            CatalogOp::Register(tool) => {
                workload
                    .registry
                    .register(tool.to_spec())
                    .map_err(|e| section_err(&section, e.to_string()))?;
            }
            CatalogOp::Retire(id) => {
                // Bounded by the catalog as it stood *at this log
                // position* — the registry grows in replay order, so a
                // log retiring a tool before registering it is corrupt.
                if *id >= workload.registry.len() || retired.contains(id) {
                    return Err(section_err(
                        SECTION_CATALOG,
                        format!("retire record names invalid or repeated tool {id}"),
                    ));
                }
                retired.push(*id);
            }
        }
    }
    if workload.registry.len() != engine.levels.tool_count() {
        return Err(SnapshotError::Mismatch(format!(
            "catalog log replays to {} tools but the levels sections hold {}",
            workload.registry.len(),
            engine.levels.tool_count()
        )));
    }
    Arc::make_mut(&mut engine.levels).restore_retired(retired);
    engine.epoch = epoch;
    engine.catalog = counters;
    engine.catalog_log = records;
    engine.churn_since_refresh = churn_since_refresh;
    Ok(())
}

/// Restores caches, sessions and counters from a checkpoint's warm
/// sections into a freshly assembled engine.
pub(crate) fn restore_warm_state(
    snapshot: &Snapshot,
    engine: &mut ServeEngine,
    prefix: &str,
) -> Result<(), SnapshotError> {
    let engine_section = format!("{prefix}{SECTION_ENGINE}");
    let doc = snapshot.section(&engine_section)?;
    let int = |key: &str| {
        doc.get(key)
            .and_then(Value::as_i64)
            .ok_or_else(|| section_err(&engine_section, format!("missing {key}")))
    };
    engine.requests_served = int("requests_served")? as u64;
    engine.session_fast_hits = int("session_fast_hits")? as u64;
    let embed_section = format!("{prefix}{SECTION_EMBED_CACHE}");
    engine.embed_cache = cache_from_json(
        snapshot.section(&embed_section)?,
        &embed_section,
        engine.config.embed_cache_capacity,
        |v| embeddings_from_json(v).map(Arc::new),
    )?;
    let memo_section = format!("{prefix}{SECTION_MEMO}");
    engine.memo = cache_from_json(
        snapshot.section(&memo_section)?,
        &memo_section,
        engine.config.memo_capacity,
        |v| selection_from_json(v).map(Arc::new),
    )?;
    let sessions_section = format!("{prefix}{SECTION_SESSIONS}");
    engine.sessions = sessions_from_json(snapshot.section(&sessions_section)?, &sessions_section)?;
    let governor_section = format!("{prefix}{SECTION_GOVERNOR}");
    engine.governor = governor_from_json(snapshot.section(&governor_section)?, &governor_section)?;
    Ok(())
}

/// Serializes a governor's live state. The window is stored as parallel
/// `(arrival, joules)` arrays; both round-trip bit-exactly, and the
/// restored window re-sums front-to-back exactly like the one that never
/// checkpointed.
fn governor_to_json(state: &GovernorState) -> Value {
    Value::object([
        ("level", Value::from(state.level().label())),
        ("clock_s", Value::from(state.clock_s())),
        (
            "window_t",
            state
                .window()
                .iter()
                .map(|(t, _)| Value::from(*t))
                .collect(),
        ),
        (
            "window_j",
            state
                .window()
                .iter()
                .map(|(_, j)| Value::from(*j))
                .collect(),
        ),
    ])
}

fn governor_from_json(doc: &Value, section: &str) -> Result<GovernorState, SnapshotError> {
    let level = doc
        .get("level")
        .and_then(Value::as_str)
        .and_then(ServiceLevel::from_label)
        .ok_or_else(|| section_err(section, "missing or unknown level"))?;
    let clock_s = doc
        .get("clock_s")
        .and_then(Value::as_f64)
        .ok_or_else(|| section_err(section, "missing clock_s"))?;
    let series = |key: &str| -> Result<Vec<f64>, SnapshotError> {
        doc.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| section_err(section, format!("missing {key}")))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| section_err(section, format!("{key} must be numbers")))
            })
            .collect()
    };
    let window_t = series("window_t")?;
    let window_j = series("window_j")?;
    if window_t.len() != window_j.len() {
        return Err(section_err(
            section,
            format!(
                "window_t holds {} samples but window_j holds {}",
                window_t.len(),
                window_j.len()
            ),
        ));
    }
    Ok(GovernorState::restore(
        level,
        clock_s,
        window_t.into_iter().zip(window_j).collect(),
    ))
}

/// Encodes a whole fleet — the tenancy state plus every tenant's full
/// section set under a `t{i}.` prefix — as one `kind: "checkpoint"`
/// snapshot. The header carries the *base* workload identity (shared by
/// all tenants) plus a `tenants` count that restore uses to build the
/// set of section names it accepts. Encoding the same fleet twice
/// yields byte-identical output.
pub(crate) fn write_fleet_checkpoint(fleet: &FleetEngine) -> Vec<u8> {
    let mut writer = SnapshotWriter::new("checkpoint");
    checkpoint_header(&mut writer, &fleet.engines[0]);
    writer.header_field("tenants", Value::from(fleet.engines.len()));
    writer.add_section(SECTION_FLEET, &fleet_to_json(fleet));
    for (tenant, engine) in fleet.engines.iter().enumerate() {
        engine_sections(engine, &mut writer, &format!("t{tenant}."));
    }
    writer.encode()
}

/// Serializes the fleet-wide tenancy state: the budget/floor/cadence
/// configuration and the cumulative traffic weights the next rebalance
/// will partition by.
fn fleet_to_json(fleet: &FleetEngine) -> Value {
    let config = fleet.config();
    Value::object([
        ("tenants", Value::from(fleet.engines.len())),
        ("embed_budget", Value::from(config.embed_budget)),
        ("memo_budget", Value::from(config.memo_budget)),
        ("embed_floor", Value::from(config.embed_floor)),
        ("memo_floor", Value::from(config.memo_floor)),
        (
            "rebalance_every",
            Value::from(config.rebalance_every as i64),
        ),
        (
            "traffic",
            fleet
                .traffic
                .iter()
                .map(|t| Value::from(*t as i64))
                .collect(),
        ),
        ("total_submitted", Value::from(fleet.total_submitted as i64)),
        // The passive fleet-wide sustained-watts estimator (per-tenant
        // governors live in each tenant's own governor section).
        ("estimator", governor_to_json(&fleet.estimator)),
    ])
}

/// The per-tenant cache capacities a fleet checkpoint recorded — the
/// partition decision in force when it was written. Restore must adopt
/// these rather than recompute the partition: capacities change only at
/// rebalance boundaries, so the current traffic counts generally
/// post-date the last decision.
fn recorded_capacities(
    snapshot: &Snapshot,
    section: &str,
) -> Result<(usize, usize), SnapshotError> {
    let doc = snapshot.section(section)?;
    let int = |key: &str| {
        doc.get(key)
            .and_then(Value::as_i64)
            .filter(|x| *x > 0)
            .ok_or_else(|| section_err(section, format!("missing or non-positive {key}")))
    };
    Ok((
        int("embed_cache_capacity")? as usize,
        int("memo_capacity")? as usize,
    ))
}

/// Restores a whole fleet from a checkpoint written by
/// [`write_fleet_checkpoint`]: validates the tenancy configuration
/// against `config`, then rebuilds every tenant's engine from its
/// `t{i}.`-prefixed sections — levels, warm caches at their recorded
/// partition capacities, sessions and catalog log — so a restarted
/// fleet boots with zero cold-cache misses.
///
/// Every rejection is a typed [`SnapshotError`] naming the offending
/// section: a missing or non-integer `tenants` header is
/// [`SnapshotError::Header`]; a section for a tenant outside
/// `0..tenants` (e.g. `t9.engine` in a 3-tenant file) is
/// [`SnapshotError::UnknownSection`]; duplicated sections are rejected
/// by the container parser before this function runs; capacities that
/// do not sum to the configured budgets are
/// [`SnapshotError::Mismatch`].
pub(crate) fn restore_fleet(
    snapshot: &Snapshot,
    workload: Workload,
    model: ModelProfile,
    config: FleetConfig,
) -> Result<FleetEngine, SnapshotError> {
    if snapshot.kind() != "checkpoint" {
        return Err(SnapshotError::Mismatch(format!(
            "kind {:?} carries no warm state; a fleet boots only from checkpoints",
            snapshot.kind()
        )));
    }
    config.validate().map_err(SnapshotError::Mismatch)?;
    let tenants = snapshot
        .header_field("tenants")
        .ok_or_else(|| SnapshotError::Header("missing tenants (not a fleet checkpoint)".into()))?
        .as_i64()
        .filter(|t| *t >= 1)
        .ok_or_else(|| SnapshotError::Header("tenants must be a positive integer".into()))?
        as usize;
    if tenants != config.tenants {
        return Err(SnapshotError::Mismatch(format!(
            "checkpoint holds {tenants} tenants but the fleet is configured for {}",
            config.tenants
        )));
    }

    // The accepted section set is a function of the tenant count: every
    // per-engine section name under each `t{i}.` prefix, plus the fleet
    // section itself. A section for a tenant the header does not declare
    // is a stranger — out-of-range tenant data must never restore.
    let mut known: Vec<String> = vec![SECTION_FLEET.to_owned()];
    for tenant in 0..tenants {
        for name in KNOWN_SECTIONS {
            known.push(format!("t{tenant}.{name}"));
        }
    }
    let known_refs: Vec<&str> = known.iter().map(String::as_str).collect();
    snapshot.ensure_known(&known_refs)?;
    validate_workload(snapshot, &workload)?;

    let doc = snapshot.section(SECTION_FLEET)?;
    let int = |key: &str| {
        doc.get(key)
            .and_then(Value::as_i64)
            .filter(|x| *x >= 0)
            .ok_or_else(|| section_err(SECTION_FLEET, format!("missing or negative {key}")))
    };
    if int("tenants")? as usize != tenants {
        return Err(section_err(
            SECTION_FLEET,
            "tenant count disagrees with the header",
        ));
    }
    let recorded = [
        ("embed_budget", config.embed_budget as i64),
        ("memo_budget", config.memo_budget as i64),
        ("embed_floor", config.embed_floor as i64),
        ("memo_floor", config.memo_floor as i64),
        ("rebalance_every", config.rebalance_every as i64),
    ];
    for (key, ours) in recorded {
        let theirs = int(key)?;
        if theirs != ours {
            return Err(SnapshotError::Mismatch(format!(
                "checkpoint was written with {key} {theirs} but the fleet runs {ours}"
            )));
        }
    }
    let traffic: Vec<u64> = doc
        .get("traffic")
        .and_then(Value::as_array)
        .ok_or_else(|| section_err(SECTION_FLEET, "missing traffic"))?
        .iter()
        .map(|t| t.as_i64().filter(|x| *x >= 0).map(|x| x as u64))
        .collect::<Option<Vec<u64>>>()
        .ok_or_else(|| section_err(SECTION_FLEET, "traffic must be nonnegative integers"))?;
    if traffic.len() != tenants {
        return Err(section_err(
            SECTION_FLEET,
            format!(
                "traffic records {} tenants, expected {tenants}",
                traffic.len()
            ),
        ));
    }
    let total_submitted = int("total_submitted")? as u64;
    if traffic.iter().sum::<u64>() != total_submitted {
        return Err(section_err(
            SECTION_FLEET,
            format!(
                "per-tenant traffic sums to {} but total_submitted records {total_submitted}",
                traffic.iter().sum::<u64>()
            ),
        ));
    }

    let estimator = governor_from_json(
        doc.get("estimator")
            .ok_or_else(|| section_err(SECTION_FLEET, "missing estimator"))?,
        SECTION_FLEET,
    )?;

    let workload = Arc::new(workload);
    let mut engines = Vec::with_capacity(tenants);
    for tenant in 0..tenants {
        let prefix = format!("t{tenant}.");
        let engine_section = format!("{prefix}{SECTION_ENGINE}");
        let (embed_capacity, memo_capacity) = recorded_capacities(snapshot, &engine_section)?;
        let mut tenant_config = config.base;
        tenant_config.embed_cache_capacity = embed_capacity;
        tenant_config.memo_capacity = memo_capacity;
        // Like the cache capacities, the governor budget slices are the
        // apportionment decision in force when the checkpoint was
        // written — adopt the recorded values rather than recompute the
        // partition over post-decision traffic.
        let recorded_doc = snapshot.section(&engine_section)?;
        let recorded_float = |key: &str| {
            recorded_doc
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| section_err(&engine_section, format!("missing {key}")))
        };
        tenant_config.governor.power_cap_w = recorded_float("power_cap_w")?;
        tenant_config.governor.carbon_budget_g_per_h = recorded_float("carbon_budget_g_per_h")?;
        validate_engine(snapshot, &model, &tenant_config, &prefix)?;
        let levels = levels_from_snapshot_prefixed(snapshot, &prefix)?;
        let mut engine = ServeEngine::assemble_shared(
            Arc::clone(&workload),
            Arc::new(levels),
            model.clone(),
            tenant_config,
            tenant as u64,
        );
        restore_warm_state(snapshot, &mut engine, &prefix)?;
        apply_catalog_log(snapshot, &mut engine, &prefix)?;
        // Bill each tenant the decode of its own sections only.
        let tenant_bytes: usize = KNOWN_SECTIONS
            .iter()
            .filter_map(|name| snapshot.section_len(&format!("{prefix}{name}")))
            .sum();
        engine.boot = engine.describe_boot("checkpoint", true, true, tenant_bytes);
        engines.push(engine);
    }
    let embed_granted: usize = engines.iter().map(|e| e.config.embed_cache_capacity).sum();
    let memo_granted: usize = engines.iter().map(|e| e.config.memo_capacity).sum();
    let check = [
        ("embed", config.embed_budget, embed_granted),
        ("memo", config.memo_budget, memo_granted),
    ];
    for (label, budget, granted) in check {
        if granted != budget {
            return Err(SnapshotError::Mismatch(format!(
                "per-tenant {label} capacities sum to {granted}, not the configured budget \
                 {budget}"
            )));
        }
    }
    Ok(FleetEngine {
        engines,
        config,
        traffic,
        total_submitted,
        estimator,
    })
}

fn engine_to_json(engine: &ServeEngine) -> Value {
    // `engine.config.governor` is normalized at assembly, so the floats
    // here are always finite and round-trip bit-exactly through
    // `lim_json`.
    Value::object([
        ("model", Value::from(engine.model.name)),
        ("quant", Value::from(engine.config.quant.label())),
        ("policy", Value::from(engine.config.policy.label())),
        ("seed", Value::from(engine.config.seed as i64)),
        ("device", Value::from(engine.config.device.label())),
        (
            "power_cap_w",
            Value::from(engine.config.governor.power_cap_w),
        ),
        (
            "governor_window_s",
            Value::from(engine.config.governor.window_s),
        ),
        (
            "carbon_seed",
            Value::from(engine.config.governor.carbon_seed as i64),
        ),
        (
            "carbon_budget_g_per_h",
            Value::from(engine.config.governor.carbon_budget_g_per_h),
        ),
        (
            "embed_cache_capacity",
            Value::from(engine.config.embed_cache_capacity),
        ),
        ("memo_capacity", Value::from(engine.config.memo_capacity)),
        (
            "requests_served",
            Value::from(engine.requests_served as i64),
        ),
        (
            "session_fast_hits",
            Value::from(engine.session_fast_hits as i64),
        ),
    ])
}

fn stats_to_json(stats: CacheStats) -> Value {
    Value::object([
        ("hits", Value::from(stats.hits as i64)),
        ("misses", Value::from(stats.misses as i64)),
        ("insertions", Value::from(stats.insertions as i64)),
        ("evictions", Value::from(stats.evictions as i64)),
    ])
}

fn stats_from_json(doc: &Value, section: &str) -> Result<CacheStats, SnapshotError> {
    let int = |key: &str| {
        doc.get(key)
            .and_then(Value::as_i64)
            .ok_or_else(|| section_err(section, format!("stats missing {key}")))
    };
    Ok(CacheStats {
        hits: int("hits")? as u64,
        misses: int("misses")? as u64,
        insertions: int("insertions")? as u64,
        evictions: int("evictions")? as u64,
    })
}

/// Serializes a cache: lifetime counters plus entries in LRU order
/// (least-recent first), reserved slots as `null` values.
fn cache_to_json<V>(cache: &LruCache<Arc<V>>, value_to_json: impl Fn(&V) -> Value) -> Value {
    Value::object([
        ("stats", stats_to_json(cache.stats())),
        (
            "entries",
            cache
                .entries_lru()
                .into_iter()
                .map(|(key, value)| {
                    Value::object([
                        ("key", Value::from(key)),
                        ("value", value.map_or(Value::Null, |v| value_to_json(v))),
                    ])
                })
                .collect(),
        ),
    ])
}

fn cache_from_json<V: Clone>(
    doc: &Value,
    section: &str,
    capacity: usize,
    value_from_json: impl Fn(&Value) -> Result<V, String>,
) -> Result<LruCache<V>, SnapshotError> {
    let stats = stats_from_json(
        doc.get("stats")
            .ok_or_else(|| section_err(section, "missing stats"))?,
        section,
    )?;
    let entry_docs = doc
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| section_err(section, "missing entries"))?;
    if entry_docs.len() > capacity {
        return Err(SnapshotError::Mismatch(format!(
            "checkpoint section {section:?} holds {} entries but the engine caps at {capacity}",
            entry_docs.len()
        )));
    }
    let mut entries = Vec::with_capacity(entry_docs.len());
    let mut seen = std::collections::HashSet::new();
    for entry in entry_docs {
        let key = entry
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| section_err(section, "entry missing key"))?
            .to_owned();
        // A key appearing twice would leave the restored recency list
        // and key index disagreeing — corrupted input must fail typed,
        // never restore into a structurally broken cache.
        if !seen.insert(key.clone()) {
            return Err(section_err(section, format!("duplicate cache key {key:?}")));
        }
        let value = match entry.get("value") {
            None | Some(Value::Null) => None,
            Some(doc) => Some(value_from_json(doc).map_err(|m| section_err(section, m))?),
        };
        entries.push((key, value));
    }
    Ok(LruCache::restore(capacity, entries, stats))
}

// The f32 <-> JSON encoding rule lives in lim_vecstore::serial so the
// bit-exactness contract has one implementation; only the error type is
// adapted here.
fn floats_from_json(doc: &Value, what: &str) -> Result<Vec<f32>, String> {
    lim_vecstore::floats_from_json(doc, what).map_err(|e| e.message)
}

fn embeddings_to_json(e: &QueryEmbeddings) -> Value {
    Value::object([
        ("query", floats_to_json(e.query.as_slice())),
        (
            "recommendations",
            e.recommendations
                .iter()
                .map(|r| Value::from(r.as_str()))
                .collect(),
        ),
        (
            "contexts",
            e.contexts
                .iter()
                .map(|c| floats_to_json(c.as_slice()))
                .collect(),
        ),
    ])
}

fn embeddings_from_json(doc: &Value) -> Result<QueryEmbeddings, String> {
    // Checkpointed embeddings are already unit-norm; `Embedding::new`
    // would re-normalise and drift each component by an ulp, breaking
    // the byte-exact restore contract.
    let query = Embedding::from_normalized(floats_from_json(
        doc.get("query").ok_or("embeddings missing query")?,
        "query",
    )?);
    let recommendations = doc
        .get("recommendations")
        .and_then(Value::as_array)
        .ok_or("embeddings missing recommendations")?
        .iter()
        .map(|r| r.as_str().map(str::to_owned))
        .collect::<Option<Vec<String>>>()
        .ok_or("recommendations must be strings")?;
    let contexts = doc
        .get("contexts")
        .and_then(Value::as_array)
        .ok_or("embeddings missing contexts")?
        .iter()
        .map(|c| floats_from_json(c, "context").map(Embedding::from_normalized))
        .collect::<Result<Vec<Embedding>, String>>()?;
    Ok(QueryEmbeddings {
        query,
        recommendations,
        contexts,
    })
}

fn level_label(level: SearchLevel) -> &'static str {
    match level {
        SearchLevel::Individual => "individual",
        SearchLevel::Cluster => "cluster",
        SearchLevel::Full => "full",
    }
}

fn level_from_label(label: &str) -> Result<SearchLevel, String> {
    match label {
        "individual" => Ok(SearchLevel::Individual),
        "cluster" => Ok(SearchLevel::Cluster),
        "full" => Ok(SearchLevel::Full),
        other => Err(format!("unknown search level {other:?}")),
    }
}

fn selection_to_json(s: &ToolSelection) -> Value {
    Value::object([
        ("level", Value::from(level_label(s.level))),
        (
            "tools",
            s.tool_indices.iter().map(|t| Value::from(*t)).collect(),
        ),
        ("level1_score", Value::from(f64::from(s.level1_score))),
        ("level2_score", Value::from(f64::from(s.level2_score))),
    ])
}

fn selection_from_json(doc: &Value) -> Result<ToolSelection, String> {
    let level = level_from_label(
        doc.get("level")
            .and_then(Value::as_str)
            .ok_or("selection missing level")?,
    )?;
    let tool_indices = doc
        .get("tools")
        .and_then(Value::as_array)
        .ok_or("selection missing tools")?
        .iter()
        .map(|t| t.as_i64().map(|x| x as usize))
        .collect::<Option<Vec<usize>>>()
        .ok_or("selection tools must be integers")?;
    let score = |key: &str| {
        doc.get(key)
            .and_then(Value::as_f64)
            .map(|x| x as f32)
            .ok_or_else(|| format!("selection missing {key}"))
    };
    Ok(ToolSelection {
        level,
        tool_indices,
        level1_score: score("level1_score")?,
        level2_score: score("level2_score")?,
    })
}

/// Serializes session warm state, sorted by session id so the same state
/// always encodes identically. Sessions whose last selection is still
/// `Pending` (it indexes a dead job table) are dropped — the engine
/// re-anchors those to `Ready` at the end of every drained batch, so a
/// `Pending` here can only mean the job table it points into is gone.
fn sessions_to_json(sessions: &HashMap<u64, SessionState>) -> Value {
    let mut ids: Vec<u64> = sessions.keys().copied().collect();
    ids.sort_unstable();
    ids.iter()
        .filter_map(|id| {
            let state = &sessions[id];
            let key = state.last_key.as_deref()?;
            let selection = match state.last_selection.as_ref()? {
                SelectionSource::Ready(selection) => selection_to_json(selection),
                SelectionSource::FullCatalog | SelectionSource::Pending(_) => return None,
            };
            Some(Value::object([
                ("id", Value::from(*id as i64)),
                ("key", Value::from(key)),
                ("selection", selection),
            ]))
        })
        .collect()
}

fn sessions_from_json(
    doc: &Value,
    section: &str,
) -> Result<HashMap<u64, SessionState>, SnapshotError> {
    let mut sessions = HashMap::new();
    for entry in doc
        .as_array()
        .ok_or_else(|| section_err(section, "sessions must be an array"))?
    {
        let id = entry
            .get("id")
            .and_then(Value::as_i64)
            .ok_or_else(|| section_err(section, "session missing id"))? as u64;
        let key = entry
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| section_err(section, "session missing key"))?
            .to_owned();
        let selection = selection_from_json(
            entry
                .get("selection")
                .ok_or_else(|| section_err(section, "session missing selection"))?,
        )
        .map_err(|m| section_err(section, m))?;
        let state = SessionState {
            last_key: Some(key),
            last_selection: Some(SelectionSource::Ready(Arc::new(selection))),
        };
        if sessions.insert(id, state).is_some() {
            return Err(section_err(section, format!("duplicate session id {id}")));
        }
    }
    Ok(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_cache_keys_and_session_ids_are_rejected() {
        let doc = lim_json::parse(
            r#"{"stats":{"hits":0,"misses":0,"insertions":2,"evictions":0},
                "entries":[{"key":"a","value":{"level":"full","tools":[],
                            "level1_score":0,"level2_score":0}},
                           {"key":"a","value":null}]}"#,
        )
        .unwrap();
        let err = cache_from_json(&doc, SECTION_MEMO, 8, |v| {
            selection_from_json(v).map(Arc::new)
        })
        .unwrap_err();
        assert!(
            matches!(&err, SnapshotError::Section { section, message }
                if section == SECTION_MEMO && message.contains("duplicate")),
            "{err}"
        );

        let doc = lim_json::parse(
            r#"[{"id":3,"key":"k","selection":{"level":"full","tools":[],
                 "level1_score":0,"level2_score":0}},
                {"id":3,"key":"k","selection":{"level":"full","tools":[],
                 "level1_score":0,"level2_score":0}}]"#,
        )
        .unwrap();
        let err = sessions_from_json(&doc, SECTION_SESSIONS).unwrap_err();
        assert!(
            matches!(&err, SnapshotError::Section { message, .. }
                if message.contains("duplicate session id 3")),
            "{err}"
        );
    }
}
