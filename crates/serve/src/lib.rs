//! `lim-serve` — a long-lived, cache-accelerated serving engine over the
//! Less-is-More pipeline.
//!
//! Batch evaluation (`lim bench`) re-embeds and re-selects from scratch
//! for every query of a cold batch. A deployed edge assistant faces the
//! opposite regime: a persistent process serving a stream of sessions
//! whose query popularity is heavily skewed. This crate exploits that
//! repetition:
//!
//! * [`ServeEngine`] — owns the tool catalog, the embedder and the
//!   Arc-shared read-only search-level indexes, and keeps per-session
//!   controller state warm across chain steps and traces;
//! * [`ServeSession`] — the incremental ingestion API
//!   ([`ServeEngine::begin_stream`]): requests are submitted one at a
//!   time or in batches as they arrive, each drain advances the
//!   deterministic stages plus the virtual-clock admission queue, and
//!   the finished report is bit-identical to replaying the same stream
//!   through [`ServeEngine::process_trace`] — which is itself a thin
//!   wrapper over a session;
//! * [`cache::LruCache`] — the seeded-LRU behind both the
//!   query-embedding cache (recommender output + `Ẽ` embeddings) and the
//!   tool-selection memo (keyed by normalized query, policy and level
//!   configuration), with hit/miss/eviction counters;
//! * [`admission`] — backpressure for open-loop traces: a bounded
//!   request queue with per-session round-robin fairness on a
//!   deterministic virtual clock, degrading to Level-3 / selection-free
//!   service under pressure and shedding with a typed outcome once the
//!   queue is full;
//! * [`catalog`] — live-catalog mutation on a running engine:
//!   [`ServeEngine::register_tool`] / [`ServeEngine::retire_tool`] (and
//!   their drain-boundary [`ServeSession`] counterparts) grow and shrink
//!   the tool catalog without a restart. Every mutation bumps a
//!   monotonic **catalog epoch** that is threaded through the
//!   embedding-cache and selection-memo keys, so stale entries die by
//!   key mismatch — the caches are never flushed — and is appended to a
//!   replayable [`CatalogRecord`] log that checkpoints carry;
//! * [`governor`] — the energy layer: every request is costed in joules
//!   on the configured [`lim_device::DeviceKind`] (execution at the
//!   served fidelity plus queue-wait idle draw), a sliding-window
//!   sustained-watts estimator runs on the virtual arrival clock, and an
//!   optional power cap / carbon budget actuates a typed
//!   [`lim_core::ServiceLevel`] ladder through the
//!   [`lim_core::ServicePolicy`] API — stepping service down to an
//!   economy quantization when the window would breach the budget, and
//!   back up with hysteresis;
//! * [`ServeReport`] — accuracy, p50/p95/p99 simulated latency, cache
//!   hit rates, queue/shed/degraded counters, boot accounting, the
//!   [`EnergyReport`] joules/watts/carbon section, the
//!   [`CatalogReport`] mutation counters and wall-clock throughput,
//!   serialized as `BENCH_serve_*.json` (`lim-serve/report-v5`);
//! * [`snapshot`] — boot-from-disk: [`ServeEngine::from_snapshot`] skips
//!   the offline level build by decoding a `lim/snapshot-v1` file
//!   (sections load lazily), and [`ServeEngine::checkpoint`] /
//!   [`ServeEngine::from_checkpoint`] round-trip the warm caches and
//!   session state so a restarted server also skips the cold-cache ramp
//!   — restore-then-replay is bit-identical to never restarting. A
//!   checkpoint of a mutated engine carries the catalog log; booting a
//!   *base* snapshot and replaying the same mutations converges to the
//!   same checkpoint bytes.
//!
//! Replays are **bit-identical for every worker count**: the engine
//! plans cache behaviour sequentially in canonical arrival order,
//! parallelizes only pure computation over [`lim_core::sharded_map`],
//! and replays admission control sequentially over the deterministic
//! per-request service times (see [`engine`] for the staged design).
//!
//! # Examples
//!
//! ```
//! use lim_serve::{ServeConfig, ServeEngine};
//! use lim_workloads::trace::{zipf_trace, TraceConfig};
//!
//! let workload = lim_workloads::bfcl(42, 60);
//! let trace = zipf_trace(&workload, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! let model = lim_llm::ModelProfile::by_name("qwen2-7b").expect("model exists");
//! let mut engine = ServeEngine::new(workload, model, ServeConfig::default());
//! let a = engine.process_trace(&trace, 1).expect("valid trace");
//! // The engine is long-lived: a second replay hits the warm caches.
//! let b = engine.process_trace(&trace, 4).expect("valid trace");
//! assert_eq!(a.success_rate, b.success_rate);
//! assert!(b.embed_cache.hit_rate() > a.embed_cache.hit_rate());
//! ```
//!
//! Overload a bounded queue with a Poisson arrival storm and watch the
//! admission layer shed:
//!
//! ```
//! use lim_serve::{AdmissionConfig, ServeConfig, ServeEngine, ShedPolicy};
//! use lim_workloads::trace::{zipf_trace, ArrivalProcess, TraceConfig};
//!
//! let workload = lim_workloads::bfcl(42, 60);
//! let trace = zipf_trace(&workload, &TraceConfig {
//!     seed: 1,
//!     arrivals: ArrivalProcess::Poisson { rate_rps: 50.0 }, // far past capacity
//!     ..TraceConfig::default()
//! });
//! let model = lim_llm::ModelProfile::by_name("qwen2-7b").expect("model exists");
//! let config = ServeConfig::builder()
//!     .admission(AdmissionConfig { queue_depth: 8, servers: 1, shed_policy: ShedPolicy::Reject })
//!     .build();
//! let mut engine = ServeEngine::new(workload, model, config);
//! let report = engine.process_trace(&trace, 2).expect("valid trace");
//! assert!(report.admission.shed > 0, "overload must shed");
//! assert_eq!(report.admission.admitted + report.admission.shed, report.requests as u64);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod catalog;
pub mod engine;
pub mod fleet;
pub mod governor;
pub mod report;
pub mod session;
pub mod snapshot;
pub mod wire;

pub use admission::{
    AdmissionConfig, AdmissionOutcome, AdmissionSim, Disposition, FleetAdmissionOutcome,
    FleetAdmissionSim, ShedPolicy, TenantAdmission,
};
pub use cache::{CacheStats, LruCache};
pub use catalog::{CatalogCounters, CatalogOp, CatalogRecord};
pub use engine::{
    normalize_query, QueryEmbeddings, ServeConfig, ServeConfigBuilder, ServeEngine,
    SNAPSHOT_DECODE_SECONDS_PER_BYTE,
};
pub use fleet::{partition, FleetConfig, FleetEngine, FleetSession, FleetSubmitError};
pub use governor::{GovernorConfig, GovernorState, ASCEND_HEADROOM};
pub use report::{
    AdmissionReport, BootReport, CatalogReport, EnergyReport, FleetReport, LatencyStats,
    ServeReport, TenantReport,
};
pub use session::{RequestEvent, ServeSession, StreamMeta, StreamRequest, Ticket};

#[cfg(test)]
mod tests;
