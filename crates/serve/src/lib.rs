//! `lim-serve` — a long-lived, cache-accelerated serving engine over the
//! Less-is-More pipeline.
//!
//! Batch evaluation (`lim bench`) re-embeds and re-selects from scratch
//! for every query of a cold batch. A deployed edge assistant faces the
//! opposite regime: a persistent process serving a stream of sessions
//! whose query popularity is heavily skewed. This crate exploits that
//! repetition:
//!
//! * [`ServeEngine`] — owns the tool catalog, the embedder and the
//!   Arc-shared read-only search-level indexes, and keeps per-session
//!   controller state warm across chain steps and traces;
//! * [`cache::LruCache`] — the seeded-LRU behind both the
//!   query-embedding cache (recommender output + `Ẽ` embeddings) and the
//!   tool-selection memo (keyed by normalized query, policy and level
//!   configuration), with hit/miss/eviction counters;
//! * [`ServeReport`] — accuracy, p50/p95/p99 simulated latency, cache
//!   hit rates and wall-clock throughput, serialized as
//!   `BENCH_serve_*.json` (`lim-serve/report-v1`).
//!
//! Replays are **bit-identical for every worker count**: the engine
//! plans cache behaviour sequentially in canonical arrival order and
//! parallelizes only pure computation over
//! [`lim_core::sharded_map`] (see [`engine`] for the four-stage design).
//!
//! # Examples
//!
//! ```
//! use lim_serve::{ServeConfig, ServeEngine};
//! use lim_workloads::trace::{zipf_trace, TraceConfig};
//!
//! let workload = lim_workloads::bfcl(42, 60);
//! let trace = zipf_trace(&workload, &TraceConfig { seed: 1, ..TraceConfig::default() });
//! let model = lim_llm::ModelProfile::by_name("qwen2-7b").expect("model exists");
//! let mut engine = ServeEngine::new(workload, model, ServeConfig::default());
//! let a = engine.process_trace(&trace, 1).expect("valid trace");
//! // The engine is long-lived: a second replay hits the warm caches.
//! let b = engine.process_trace(&trace, 4).expect("valid trace");
//! assert_eq!(a.success_rate, b.success_rate);
//! assert!(b.embed_cache.hit_rate() > a.embed_cache.hit_rate());
//! ```

pub mod cache;
pub mod engine;
pub mod report;

pub use cache::{CacheStats, LruCache};
pub use engine::{normalize_query, QueryEmbeddings, ServeConfig, ServeEngine};
pub use report::{LatencyStats, ServeReport};

#[cfg(test)]
mod tests;
