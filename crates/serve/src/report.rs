//! Serving reports and the `BENCH_serve_*.json` document.
//!
//! # The `lim-serve/report-v5` format
//!
//! `lim loadgen --out BENCH_serve_1.json` (and [`ServeReport::to_json`]
//! generally) writes one JSON object per trace replay:
//!
//! ```json
//! {
//!   "schema": "lim-serve/report-v5",
//!   "benchmark": "bfcl",
//!   "model": "llama3.1-8b",
//!   "quant": "q4_K_M",
//!   "policy": "lim-k3",
//!   "engine_seed": 1580459264,
//!   "trace": {"seed": 7, "zipf_s": 1.0, "sessions": 64,
//!             "requests": 512, "unique_queries": 141},
//!   "workers": 4,
//!   "success_rate": 0.47,
//!   "tool_accuracy": 0.61,
//!   "avg_offered_tools": 5.2,
//!   "level1_share": 0.7, "level2_share": 0.2, "level3_share": 0.1,
//!   "latency": {"p50_s": 9.1, "p95_s": 21.0, "p99_s": 24.8,
//!               "mean_s": 11.2, "max_s": 30.1},
//!   "sim_total_seconds": 5700.0,
//!   "avg_power_w": 21.7,
//!   "energy": {
//!     "device": "agx-orin", "power_cap_w": 18.0, "window_s": 60.0,
//!     "carbon_seed": 7, "carbon_budget_g_per_h": 0.0,
//!     "joules_per_request": {"p50": 210.4, "p95": 390.2, "p99": 455.0,
//!                            "mean": 240.8, "max": 612.3},
//!     "sustained_watts_max": 17.8,
//!     "gco2_per_1k_requests": 24.1,
//!     "governor_transitions": 6
//!   },
//!   "caches": {
//!     "embedding": {"hits": 371, "misses": 141, "insertions": 141,
//!                   "evictions": 0, "hit_rate": 0.72},
//!     "selection": {"hits": 339, "misses": 141, "insertions": 141,
//!                   "evictions": 0, "hit_rate": 0.70},
//!     "session_fast_hits": 32
//!   },
//!   "boot": {
//!     "mode": "snapshot", "build_skipped": true, "prewarm_skipped": false,
//!     "sim_boot_seconds": 0.32,
//!     "warm_embed_entries": 60, "warm_memo_entries": 0
//!   },
//!   "admission": {
//!     "arrivals": "poisson:0.2", "queue_depth": 32, "servers": 1,
//!     "shed_policy": "degrade",
//!     "admitted": 360, "degraded": 24, "shed": 11,
//!     "max_queue_depth": 32,
//!     "queue_wait": {"p50_s": 0.8, "p95_s": 14.2, "p99_s": 31.0,
//!                    "mean_s": 3.1, "max_s": 40.2}
//!   },
//!   "catalog": {
//!     "epoch": 6, "registered": 4, "retired": 2,
//!     "tombstones": 2, "compactions": 0,
//!     "cluster_refreshes": 1, "memo_invalidations": 37
//!   },
//!   "wall_seconds": 0.08,
//!   "requests_per_second": 6400.0
//! }
//! ```
//!
//! Every field except `wall_seconds` and `requests_per_second` is
//! deterministic for a given (engine config, trace) pair — *including*
//! the cache counters, the latency percentiles **and the whole
//! `admission` section**, for any worker count. The CI regression gate
//! (`lim compare`) therefore tracks the deterministic fields and ignores
//! the two wall-clock ones.
//!
//! ## Versioning
//!
//! `schema` is bumped when a field is renamed, removed or changes
//! meaning; purely additive fields keep the id. `lim compare` refuses to
//! compare documents with different ids and selects its tracked-metric
//! set by id, so a bump forces the committed baseline to be regenerated
//! deliberately rather than silently gating against stale semantics.
//!
//! * `lim-serve/report-v1` — the PR 3 format: no `admission` section;
//!   accuracy denominators trivially equal the request count because
//!   every request executed.
//! * `lim-serve/report-v2` — adds the `admission` section. Shed requests
//!   still count in the `success_rate` / `tool_accuracy` / level-share
//!   denominators (a shed request is a failed request — the report must
//!   show the accuracy price of stability), so under shedding the three
//!   level shares sum to the admitted fraction, not 1.0.
//!   `avg_offered_tools`, `latency` and `sim_total_seconds` cover
//!   executed (served + degraded) requests only; degraded requests
//!   execute the Level-3 full catalog and are counted in
//!   `level3_share`. The snapshot work later added the additive `boot`
//!   section (`mode`: `cold|snapshot|checkpoint`, build-skipped /
//!   prewarm-skipped flags, simulated boot cost) without bumping the
//!   id.
//! * `lim-serve/report-v3` — adds the `catalog` section (live-catalog
//!   epoch, register/retire/tombstone/compaction counters, Level-2
//!   refreshes and memo invalidations). For an engine that never
//!   mutates its catalog every other field is numerically unchanged
//!   from v2, but the id is bumped anyway: the CI churn gate compares
//!   catalog counters at tolerance 0, and `lim compare` selects its
//!   tracked-metric set by schema id — a v2 baseline must not silently
//!   pass a churn replay whose catalog section it cannot see.
//! * `lim-serve/report-v4` — the *fleet* document: the v3 field set with
//!   an additive per-tenant `tenants` array (see [`FleetReport`]).
//! * `lim-serve/report-v5` — adds the `energy` section: the simulated
//!   device, the power-governor knobs, per-request joules percentiles
//!   (execution at the served fidelity **plus queue-wait idle draw**),
//!   the max of the sliding-window sustained-watts estimator, grams of
//!   CO₂ per thousand offered requests against the seeded carbon trace,
//!   and the count of governor rung transitions. Every energy field is
//!   deterministic, so `lim compare` gates the joule/watt/carbon numbers
//!   downward like latency. See `docs/SCHEMAS.md` for the
//!   field-by-field reference.
//! * `lim-serve/report-v6` — the fleet document over v5: per-tenant
//!   objects also carry their `energy` slice (tenant power caps are
//!   apportioned from the fleet-wide budget like the cache budgets).

use lim_json::Value;
use lim_llm::Quant;

use crate::cache::CacheStats;

/// Latency distribution over per-request *simulated* seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Mean.
    pub mean_s: f64,
    /// Slowest request.
    pub max_s: f64,
}

impl LatencyStats {
    /// Linearly interpolated percentiles over `samples` (the classic
    /// "linear" rule: quantile `q` sits at fractional index `q·(n−1)`
    /// between the two bracketing order statistics). Nearest-rank
    /// picking snapped small batches to whole samples — queue-wait
    /// medians over mostly-idle replays came out exactly 0 even when
    /// requests did wait. Zeroed for an empty batch.
    pub fn from_seconds(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                mean_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let position = q * (sorted.len() - 1) as f64;
            let low = position.floor() as usize;
            let high = position.ceil() as usize;
            sorted[low] + (sorted[high] - sorted[low]) * (position - low as f64)
        };
        Self {
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_s: *sorted.last().expect("non-empty"),
        }
    }
}

/// How the engine came up, and what the startup cost (simulated). Added
/// to `lim-serve/report-v2` by the snapshot work — purely additive, so
/// the schema id is unchanged; `lim compare` gates `boot.build_skipped`
/// and `boot.sim_boot_seconds` only when the baseline carries them.
#[derive(Debug, Clone, PartialEq)]
pub struct BootReport {
    /// `"cold"` (levels built in-process), `"snapshot"` (levels decoded
    /// from a `lim/snapshot-v1` file) or `"checkpoint"` (levels plus
    /// warm caches and session state restored).
    pub mode: String,
    /// Whether the offline level build was skipped at boot.
    pub build_skipped: bool,
    /// Whether the startup cache pre-warm was skipped (checkpoint boots
    /// restore warm caches instead of recomputing seed entries).
    pub prewarm_skipped: bool,
    /// Simulated seconds the boot cost: embedding work for a cold
    /// build/pre-warm, decode time for a snapshot.
    pub sim_boot_seconds: f64,
    /// Embedding-cache entries resident when serving began.
    pub warm_embed_entries: usize,
    /// Selection-memo entries resident when serving began.
    pub warm_memo_entries: usize,
}

impl BootReport {
    /// The placeholder used before boot accounting runs and by
    /// [`ServeReport::deterministic_view`]: boot describes how a
    /// process started, not what a replay computed, so determinism
    /// comparisons across boot modes neutralize it.
    pub fn neutral() -> Self {
        Self {
            mode: "cold".to_owned(),
            build_skipped: false,
            prewarm_skipped: false,
            sim_boot_seconds: 0.0,
            warm_embed_entries: 0,
            warm_memo_entries: 0,
        }
    }
}

/// Live-catalog state and churn counters at report time (all
/// deterministic; see [`crate::catalog`] for the mutation machinery).
/// Counters are lifetime totals — a snapshot-booted engine replays the
/// catalog log, so its totals line up with the live engine it mirrors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogReport {
    /// Catalog epoch (0 = the catalog was never mutated).
    pub epoch: u64,
    /// Tools registered live.
    pub registered: u64,
    /// Tools retired live.
    pub retired: u64,
    /// Tombstones currently resident in the Level-1 index.
    pub tombstones: usize,
    /// Tombstone compactions the Level-1 index performed.
    pub compactions: u64,
    /// Staleness-bounded Level-2 cluster refreshes.
    pub cluster_refreshes: u64,
    /// Selection-memo entries stranded by epoch bumps.
    pub memo_invalidations: u64,
}

impl CatalogReport {
    /// The state of a never-mutated catalog — all zeros.
    pub fn unchanged() -> Self {
        Self {
            epoch: 0,
            registered: 0,
            retired: 0,
            tombstones: 0,
            compactions: 0,
            cluster_refreshes: 0,
            memo_invalidations: 0,
        }
    }
}

/// What the admission-control layer did during one replay (all
/// deterministic; see the [`crate::admission`] module for the queue
/// semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionReport {
    /// Arrival-process label of the replayed trace
    /// (`"back-to-back"`, `"poisson:2"`, `"burst:8:16"`).
    pub arrivals: String,
    /// Configured queue capacity (0 = admission disabled).
    pub queue_depth: usize,
    /// Simulated executors draining the queue.
    pub servers: usize,
    /// Configured shed policy label (`"reject"` / `"degrade"`).
    pub shed_policy: String,
    /// Requests admitted (served at full quality or degraded).
    pub admitted: u64,
    /// Requests served degraded (Level-3 full catalog, selection-free).
    pub degraded: u64,
    /// Requests shed (never executed; counted as failures).
    pub shed: u64,
    /// Deepest the wait queue ever got.
    pub max_queue_depth: usize,
    /// Queue-wait distribution over admitted requests (virtual seconds).
    pub queue_wait: LatencyStats,
}

/// Energy and carbon accounting for one replay — the report-v5 `energy`
/// section (all deterministic; see [`crate::governor`] for the
/// estimator and the actuation ladder).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Simulated device label (`"agx-orin"`, `"agx-orin-30w"`,
    /// `"orin-nano"`).
    pub device: String,
    /// Configured sustained-power cap in watts (`0.0` = uncapped).
    pub power_cap_w: f64,
    /// Sliding estimation window in virtual seconds.
    pub window_s: f64,
    /// Seed of the synthetic carbon-intensity trace.
    pub carbon_seed: u64,
    /// Configured carbon budget in g CO₂ / h (`0.0` = unbudgeted).
    pub carbon_budget_g_per_h: f64,
    /// Per-request joules distribution over executed requests: execution
    /// energy at the fidelity actually served plus queue-wait idle draw.
    pub joules_per_request: LatencyStats,
    /// Max of the sliding-window sustained-watts estimator (windowed
    /// energy-admission rate on the virtual arrival clock).
    pub sustained_watts_max: f64,
    /// Grams of CO₂ per thousand offered requests (shed requests count
    /// in the denominator — they drew nothing).
    pub gco2_per_1k_requests: f64,
    /// Governor service-rung transitions during this replay.
    pub governor_transitions: u64,
}

/// Everything one trace replay produced (see the module docs for the
/// serialized form).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Benchmark the engine serves.
    pub benchmark: String,
    /// Served model profile.
    pub model: String,
    /// Served quantization.
    pub quant: Quant,
    /// Policy label (`"lim-k3"`, `"gorilla-k3"`, `"default"`).
    pub policy: String,
    /// Engine (pipeline) seed driving the agent draws.
    pub engine_seed: u64,
    /// Seed of the replayed trace.
    pub trace_seed: u64,
    /// Zipf exponent of the replayed trace.
    pub zipf_s: f64,
    /// Worker threads the replay ran on (resolved, never 0).
    pub workers: usize,
    /// Sessions in the trace.
    pub sessions: usize,
    /// Requests replayed.
    pub requests: usize,
    /// Distinct queries in the trace.
    pub unique_queries: usize,
    /// Fraction of requests whose whole chain succeeded.
    pub success_rate: f64,
    /// Fraction of requests whose every step picked the right tool.
    pub tool_accuracy: f64,
    /// Mean tools offered to the agent.
    pub avg_offered_tools: f64,
    /// Fraction decided at Search Level 1.
    pub level1_share: f64,
    /// Fraction decided at Search Level 2.
    pub level2_share: f64,
    /// Fraction decided at Level 3 / full catalog.
    pub level3_share: f64,
    /// Per-request simulated latency distribution.
    pub latency: LatencyStats,
    /// Sum of simulated request seconds.
    pub sim_total_seconds: f64,
    /// Time-weighted simulated power.
    pub avg_power_w: f64,
    /// Energy and carbon accounting (joules, sustained watts, gCO₂,
    /// governor transitions).
    pub energy: EnergyReport,
    /// Embedding-cache counters for this replay.
    pub embed_cache: CacheStats,
    /// Selection-memo counters for this replay.
    pub selection_memo: CacheStats,
    /// Requests short-circuited by the per-session warm controller.
    pub session_fast_hits: u64,
    /// How the engine booted (cold / snapshot / checkpoint).
    pub boot: BootReport,
    /// Live-catalog epoch and churn counters.
    pub catalog: CatalogReport,
    /// Backpressure outcomes: queue waits, shed and degraded counts.
    pub admission: AdmissionReport,
    /// Real elapsed seconds (not deterministic).
    pub wall_seconds: f64,
    /// Requests per wall-clock second (not deterministic).
    pub requests_per_second: f64,
}

fn cache_to_json(stats: &CacheStats) -> Value {
    Value::object([
        ("hits", Value::from(stats.hits as i64)),
        ("misses", Value::from(stats.misses as i64)),
        ("insertions", Value::from(stats.insertions as i64)),
        ("evictions", Value::from(stats.evictions as i64)),
        ("hit_rate", Value::from(stats.hit_rate())),
    ])
}

fn latency_to_json(l: &LatencyStats) -> Value {
    Value::object([
        ("p50_s", Value::from(l.p50_s)),
        ("p95_s", Value::from(l.p95_s)),
        ("p99_s", Value::from(l.p99_s)),
        ("mean_s", Value::from(l.mean_s)),
        ("max_s", Value::from(l.max_s)),
    ])
}

fn energy_to_json(e: &EnergyReport) -> Value {
    // Joules percentiles ride the LatencyStats machinery but are not
    // seconds, so the keys drop the `_s` suffix.
    let j = &e.joules_per_request;
    Value::object([
        ("device", Value::from(e.device.as_str())),
        ("power_cap_w", Value::from(e.power_cap_w)),
        ("window_s", Value::from(e.window_s)),
        ("carbon_seed", Value::from(e.carbon_seed as i64)),
        (
            "carbon_budget_g_per_h",
            Value::from(e.carbon_budget_g_per_h),
        ),
        (
            "joules_per_request",
            Value::object([
                ("p50", Value::from(j.p50_s)),
                ("p95", Value::from(j.p95_s)),
                ("p99", Value::from(j.p99_s)),
                ("mean", Value::from(j.mean_s)),
                ("max", Value::from(j.max_s)),
            ]),
        ),
        ("sustained_watts_max", Value::from(e.sustained_watts_max)),
        ("gco2_per_1k_requests", Value::from(e.gco2_per_1k_requests)),
        (
            "governor_transitions",
            Value::from(e.governor_transitions as i64),
        ),
    ])
}

impl ServeReport {
    /// Serializes to the `lim-serve/report-v5` document.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema", Value::from("lim-serve/report-v5")),
            ("benchmark", Value::from(self.benchmark.as_str())),
            ("model", Value::from(self.model.as_str())),
            ("quant", Value::from(self.quant.label())),
            ("policy", Value::from(self.policy.as_str())),
            ("engine_seed", Value::from(self.engine_seed as i64)),
            (
                "trace",
                Value::object([
                    ("seed", Value::from(self.trace_seed as i64)),
                    ("zipf_s", Value::from(self.zipf_s)),
                    ("sessions", Value::from(self.sessions)),
                    ("requests", Value::from(self.requests)),
                    ("unique_queries", Value::from(self.unique_queries)),
                ]),
            ),
            ("workers", Value::from(self.workers)),
            ("success_rate", Value::from(self.success_rate)),
            ("tool_accuracy", Value::from(self.tool_accuracy)),
            ("avg_offered_tools", Value::from(self.avg_offered_tools)),
            ("level1_share", Value::from(self.level1_share)),
            ("level2_share", Value::from(self.level2_share)),
            ("level3_share", Value::from(self.level3_share)),
            ("latency", latency_to_json(&self.latency)),
            ("sim_total_seconds", Value::from(self.sim_total_seconds)),
            ("avg_power_w", Value::from(self.avg_power_w)),
            ("energy", energy_to_json(&self.energy)),
            (
                "caches",
                Value::object([
                    ("embedding", cache_to_json(&self.embed_cache)),
                    ("selection", cache_to_json(&self.selection_memo)),
                    (
                        "session_fast_hits",
                        Value::from(self.session_fast_hits as i64),
                    ),
                ]),
            ),
            (
                "boot",
                Value::object([
                    ("mode", Value::from(self.boot.mode.as_str())),
                    ("build_skipped", Value::from(self.boot.build_skipped)),
                    ("prewarm_skipped", Value::from(self.boot.prewarm_skipped)),
                    ("sim_boot_seconds", Value::from(self.boot.sim_boot_seconds)),
                    (
                        "warm_embed_entries",
                        Value::from(self.boot.warm_embed_entries),
                    ),
                    (
                        "warm_memo_entries",
                        Value::from(self.boot.warm_memo_entries),
                    ),
                ]),
            ),
            (
                "admission",
                Value::object([
                    ("arrivals", Value::from(self.admission.arrivals.as_str())),
                    ("queue_depth", Value::from(self.admission.queue_depth)),
                    ("servers", Value::from(self.admission.servers)),
                    (
                        "shed_policy",
                        Value::from(self.admission.shed_policy.as_str()),
                    ),
                    ("admitted", Value::from(self.admission.admitted as i64)),
                    ("degraded", Value::from(self.admission.degraded as i64)),
                    ("shed", Value::from(self.admission.shed as i64)),
                    (
                        "max_queue_depth",
                        Value::from(self.admission.max_queue_depth),
                    ),
                    ("queue_wait", latency_to_json(&self.admission.queue_wait)),
                ]),
            ),
            (
                "catalog",
                Value::object([
                    ("epoch", Value::from(self.catalog.epoch as i64)),
                    ("registered", Value::from(self.catalog.registered as i64)),
                    ("retired", Value::from(self.catalog.retired as i64)),
                    ("tombstones", Value::from(self.catalog.tombstones)),
                    ("compactions", Value::from(self.catalog.compactions as i64)),
                    (
                        "cluster_refreshes",
                        Value::from(self.catalog.cluster_refreshes as i64),
                    ),
                    (
                        "memo_invalidations",
                        Value::from(self.catalog.memo_invalidations as i64),
                    ),
                ]),
            ),
            ("wall_seconds", Value::from(self.wall_seconds)),
            ("requests_per_second", Value::from(self.requests_per_second)),
        ])
    }

    /// The report with wall-clock fields zeroed and the boot section
    /// neutralized — the part that must be bit-identical across worker
    /// counts, machines **and boot modes** (a snapshot or checkpoint
    /// boot must compute exactly what a cold boot computes).
    pub fn deterministic_view(&self) -> ServeReport {
        ServeReport {
            wall_seconds: 0.0,
            requests_per_second: 0.0,
            workers: 0,
            boot: BootReport::neutral(),
            ..self.clone()
        }
    }
}

/// One tenant's slice of a fleet replay: a full [`ServeReport`] computed
/// over just that tenant's requests (through the same aggregation code
/// path as a standalone engine), plus the cache capacities the fleet's
/// budget partition last granted it and the floors it can never be
/// evicted below.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Fleet tenant id (dense, 0-based).
    pub tenant: u64,
    /// The tenant's own replay report.
    pub report: ServeReport,
    /// Embedding-cache entries currently granted to this tenant.
    pub embed_capacity: usize,
    /// Guaranteed minimum embedding-cache entries (the QoS floor).
    pub embed_floor: usize,
    /// Selection-memo entries currently granted to this tenant.
    pub memo_capacity: usize,
    /// Guaranteed minimum selection-memo entries.
    pub memo_floor: usize,
}

fn tenant_cache_to_json(stats: &CacheStats, capacity: usize, floor: usize) -> Value {
    let mut value = cache_to_json(stats);
    value.insert("capacity", Value::from(capacity));
    value.insert("floor", Value::from(floor));
    value
}

impl TenantReport {
    /// The compact per-tenant object embedded in a report-v6 `tenants`
    /// array: the tenant's deterministic accuracy/latency/cache/energy/
    /// admission numbers, without repeating the fleet-wide identity
    /// fields.
    pub fn to_json(&self) -> Value {
        let r = &self.report;
        Value::object([
            ("tenant", Value::from(self.tenant as i64)),
            ("requests", Value::from(r.requests)),
            ("sessions", Value::from(r.sessions)),
            ("unique_queries", Value::from(r.unique_queries)),
            ("success_rate", Value::from(r.success_rate)),
            ("tool_accuracy", Value::from(r.tool_accuracy)),
            ("avg_offered_tools", Value::from(r.avg_offered_tools)),
            ("latency", latency_to_json(&r.latency)),
            ("sim_total_seconds", Value::from(r.sim_total_seconds)),
            ("energy", energy_to_json(&r.energy)),
            (
                "caches",
                Value::object([
                    (
                        "embedding",
                        tenant_cache_to_json(&r.embed_cache, self.embed_capacity, self.embed_floor),
                    ),
                    (
                        "selection",
                        tenant_cache_to_json(
                            &r.selection_memo,
                            self.memo_capacity,
                            self.memo_floor,
                        ),
                    ),
                    ("session_fast_hits", Value::from(r.session_fast_hits as i64)),
                ]),
            ),
            (
                "admission",
                Value::object([
                    ("admitted", Value::from(r.admission.admitted as i64)),
                    ("degraded", Value::from(r.admission.degraded as i64)),
                    ("shed", Value::from(r.admission.shed as i64)),
                    ("max_queue_depth", Value::from(r.admission.max_queue_depth)),
                    ("queue_wait", latency_to_json(&r.admission.queue_wait)),
                ]),
            ),
            (
                "catalog",
                Value::object([
                    ("epoch", Value::from(r.catalog.epoch as i64)),
                    ("registered", Value::from(r.catalog.registered as i64)),
                    ("retired", Value::from(r.catalog.retired as i64)),
                    ("tombstones", Value::from(r.catalog.tombstones)),
                    ("compactions", Value::from(r.catalog.compactions as i64)),
                    (
                        "cluster_refreshes",
                        Value::from(r.catalog.cluster_refreshes as i64),
                    ),
                    (
                        "memo_invalidations",
                        Value::from(r.catalog.memo_invalidations as i64),
                    ),
                ]),
            ),
        ])
    }
}

/// Everything one fleet replay produced: the fleet-wide aggregate (same
/// field set as a standalone [`ServeReport`], caches and catalog summed
/// across tenants) plus one [`TenantReport`] per tenant.
///
/// Serialized as `lim-serve/report-v6`: the v5 document with the schema
/// id bumped and an additive `tenants` array. Every per-tenant field is
/// deterministic for any worker count, like the fleet-wide ones.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Fleet-wide aggregate over all tenants' requests.
    pub overall: ServeReport,
    /// Per-tenant breakdowns, dense by tenant id.
    pub tenants: Vec<TenantReport>,
}

impl FleetReport {
    /// Serializes to the `lim-serve/report-v6` document.
    pub fn to_json(&self) -> Value {
        let mut doc = self.overall.to_json();
        doc.insert("schema", Value::from("lim-serve/report-v6"));
        doc.insert(
            "tenants",
            Value::Array(self.tenants.iter().map(TenantReport::to_json).collect()),
        );
        doc
    }

    /// The fleet report with every wall-clock field zeroed and every
    /// boot section neutralized — fleet-wide and per-tenant — mirroring
    /// [`ServeReport::deterministic_view`].
    pub fn deterministic_view(&self) -> FleetReport {
        FleetReport {
            overall: self.overall.deterministic_view(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantReport {
                    report: t.report.deterministic_view(),
                    ..t.clone()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let l = LatencyStats::from_seconds(&samples);
        assert!((l.p50_s - 50.5).abs() < 1e-12);
        assert!((l.p95_s - 95.05).abs() < 1e-12);
        assert!((l.p99_s - 99.01).abs() < 1e-12);
        assert_eq!(l.max_s, 100.0);
        assert!((l.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_handle_tiny_batches() {
        let l = LatencyStats::from_seconds(&[3.0]);
        assert_eq!(l.p50_s, 3.0);
        assert_eq!(l.p99_s, 3.0);
        assert_eq!(LatencyStats::from_seconds(&[]).max_s, 0.0);
        // Unsorted input is sorted internally; the median of three is
        // the middle sample, and p99 interpolates toward the max.
        let l = LatencyStats::from_seconds(&[5.0, 1.0, 3.0]);
        assert_eq!(l.p50_s, 3.0);
        assert_eq!(l.max_s, 5.0);
        assert!((l.p99_s - 4.96).abs() < 1e-12);
    }

    #[test]
    fn median_is_nonzero_when_half_the_waits_are_zero() {
        // The regression that motivated interpolation: a mostly-idle
        // queue where exactly half the requests waited. Nearest-rank
        // snapped the median to 0; interpolation reports the midpoint.
        let samples = [0.0, 0.0, 0.0, 0.4, 0.8, 1.2];
        let l = LatencyStats::from_seconds(&samples);
        assert!((l.p50_s - 0.2).abs() < 1e-12);
    }
}
