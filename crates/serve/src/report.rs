//! Serving reports and the `BENCH_serve_*.json` document.
//!
//! # The `lim-serve/report-v1` format
//!
//! `lim loadgen --out BENCH_serve_1.json` (and [`ServeReport::to_json`]
//! generally) writes one JSON object per trace replay:
//!
//! ```json
//! {
//!   "schema": "lim-serve/report-v1",
//!   "benchmark": "bfcl",
//!   "model": "llama3.1-8b",
//!   "quant": "q4_K_M",
//!   "policy": "lim-k3",
//!   "engine_seed": 1580459264,
//!   "trace": {"seed": 7, "zipf_s": 1.0, "sessions": 64,
//!             "requests": 512, "unique_queries": 141},
//!   "workers": 4,
//!   "success_rate": 0.47,
//!   "tool_accuracy": 0.61,
//!   "avg_offered_tools": 5.2,
//!   "level1_share": 0.7, "level2_share": 0.2, "level3_share": 0.1,
//!   "latency": {"p50_s": 9.1, "p95_s": 21.0, "p99_s": 24.8,
//!               "mean_s": 11.2, "max_s": 30.1},
//!   "sim_total_seconds": 5700.0,
//!   "avg_power_w": 21.7,
//!   "caches": {
//!     "embedding": {"hits": 371, "misses": 141, "insertions": 141,
//!                   "evictions": 0, "hit_rate": 0.72},
//!     "selection": {"hits": 339, "misses": 141, "insertions": 141,
//!                   "evictions": 0, "hit_rate": 0.70},
//!     "session_fast_hits": 32
//!   },
//!   "wall_seconds": 0.08,
//!   "requests_per_second": 6400.0
//! }
//! ```
//!
//! Every field except `wall_seconds` and `requests_per_second` is
//! deterministic for a given (engine config, trace) pair — *including*
//! the cache counters and latency percentiles, for any worker count. The
//! CI regression gate (`lim compare`) therefore tracks the deterministic
//! fields and ignores the two wall-clock ones. `schema` is bumped on any
//! rename/removal; additions are backward-compatible.

use lim_json::Value;
use lim_llm::Quant;

use crate::cache::CacheStats;

/// Latency distribution over per-request *simulated* seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Mean.
    pub mean_s: f64,
    /// Slowest request.
    pub max_s: f64,
}

impl LatencyStats {
    /// Nearest-rank percentiles over `samples`. Zeroed for an empty batch.
    pub fn from_seconds(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                mean_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_s: *sorted.last().expect("non-empty"),
        }
    }
}

/// Everything one trace replay produced (see the module docs for the
/// serialized form).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Benchmark the engine serves.
    pub benchmark: String,
    /// Served model profile.
    pub model: String,
    /// Served quantization.
    pub quant: Quant,
    /// Policy label (`"lim-k3"`, `"gorilla-k3"`, `"default"`).
    pub policy: String,
    /// Engine (pipeline) seed driving the agent draws.
    pub engine_seed: u64,
    /// Seed of the replayed trace.
    pub trace_seed: u64,
    /// Zipf exponent of the replayed trace.
    pub zipf_s: f64,
    /// Worker threads the replay ran on (resolved, never 0).
    pub workers: usize,
    /// Sessions in the trace.
    pub sessions: usize,
    /// Requests replayed.
    pub requests: usize,
    /// Distinct queries in the trace.
    pub unique_queries: usize,
    /// Fraction of requests whose whole chain succeeded.
    pub success_rate: f64,
    /// Fraction of requests whose every step picked the right tool.
    pub tool_accuracy: f64,
    /// Mean tools offered to the agent.
    pub avg_offered_tools: f64,
    /// Fraction decided at Search Level 1.
    pub level1_share: f64,
    /// Fraction decided at Search Level 2.
    pub level2_share: f64,
    /// Fraction decided at Level 3 / full catalog.
    pub level3_share: f64,
    /// Per-request simulated latency distribution.
    pub latency: LatencyStats,
    /// Sum of simulated request seconds.
    pub sim_total_seconds: f64,
    /// Time-weighted simulated power.
    pub avg_power_w: f64,
    /// Embedding-cache counters for this replay.
    pub embed_cache: CacheStats,
    /// Selection-memo counters for this replay.
    pub selection_memo: CacheStats,
    /// Requests short-circuited by the per-session warm controller.
    pub session_fast_hits: u64,
    /// Real elapsed seconds (not deterministic).
    pub wall_seconds: f64,
    /// Requests per wall-clock second (not deterministic).
    pub requests_per_second: f64,
}

fn cache_to_json(stats: &CacheStats) -> Value {
    Value::object([
        ("hits", Value::from(stats.hits as i64)),
        ("misses", Value::from(stats.misses as i64)),
        ("insertions", Value::from(stats.insertions as i64)),
        ("evictions", Value::from(stats.evictions as i64)),
        ("hit_rate", Value::from(stats.hit_rate())),
    ])
}

impl ServeReport {
    /// Serializes to the `lim-serve/report-v1` document.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema", Value::from("lim-serve/report-v1")),
            ("benchmark", Value::from(self.benchmark.as_str())),
            ("model", Value::from(self.model.as_str())),
            ("quant", Value::from(self.quant.label())),
            ("policy", Value::from(self.policy.as_str())),
            ("engine_seed", Value::from(self.engine_seed as i64)),
            (
                "trace",
                Value::object([
                    ("seed", Value::from(self.trace_seed as i64)),
                    ("zipf_s", Value::from(self.zipf_s)),
                    ("sessions", Value::from(self.sessions)),
                    ("requests", Value::from(self.requests)),
                    ("unique_queries", Value::from(self.unique_queries)),
                ]),
            ),
            ("workers", Value::from(self.workers)),
            ("success_rate", Value::from(self.success_rate)),
            ("tool_accuracy", Value::from(self.tool_accuracy)),
            ("avg_offered_tools", Value::from(self.avg_offered_tools)),
            ("level1_share", Value::from(self.level1_share)),
            ("level2_share", Value::from(self.level2_share)),
            ("level3_share", Value::from(self.level3_share)),
            (
                "latency",
                Value::object([
                    ("p50_s", Value::from(self.latency.p50_s)),
                    ("p95_s", Value::from(self.latency.p95_s)),
                    ("p99_s", Value::from(self.latency.p99_s)),
                    ("mean_s", Value::from(self.latency.mean_s)),
                    ("max_s", Value::from(self.latency.max_s)),
                ]),
            ),
            ("sim_total_seconds", Value::from(self.sim_total_seconds)),
            ("avg_power_w", Value::from(self.avg_power_w)),
            (
                "caches",
                Value::object([
                    ("embedding", cache_to_json(&self.embed_cache)),
                    ("selection", cache_to_json(&self.selection_memo)),
                    (
                        "session_fast_hits",
                        Value::from(self.session_fast_hits as i64),
                    ),
                ]),
            ),
            ("wall_seconds", Value::from(self.wall_seconds)),
            ("requests_per_second", Value::from(self.requests_per_second)),
        ])
    }

    /// The report with wall-clock fields zeroed — the part that must be
    /// bit-identical across worker counts and machines.
    pub fn deterministic_view(&self) -> ServeReport {
        ServeReport {
            wall_seconds: 0.0,
            requests_per_second: 0.0,
            workers: 0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let l = LatencyStats::from_seconds(&samples);
        assert_eq!(l.p50_s, 50.0);
        assert_eq!(l.p95_s, 95.0);
        assert_eq!(l.p99_s, 99.0);
        assert_eq!(l.max_s, 100.0);
        assert!((l.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_handle_tiny_batches() {
        let l = LatencyStats::from_seconds(&[3.0]);
        assert_eq!(l.p50_s, 3.0);
        assert_eq!(l.p99_s, 3.0);
        assert_eq!(LatencyStats::from_seconds(&[]).max_s, 0.0);
        // Unsorted input is sorted internally.
        let l = LatencyStats::from_seconds(&[5.0, 1.0, 3.0]);
        assert_eq!(l.p50_s, 3.0);
        assert_eq!(l.max_s, 5.0);
    }
}
