//! The power-budget governor: energy- and carbon-aware service-level
//! actuation on the virtual clock.
//!
//! Serving on a battery- or thermally-constrained edge device (the
//! paper's Jetson targets) is budgeted in **watts**, not requests: the
//! deployment cares that the board's sustained draw stays under a cap,
//! and increasingly (CarbonCall, PAPERS.md arxiv 2504.20348) that the
//! *carbon* drawn from the grid stays under a budget as intensity swings
//! over the day. This module is the deterministic control loop for both:
//!
//! * [`GovernorConfig`] — the knobs: a sustained-power cap in watts, the
//!   sliding estimation window, the seed of the synthetic
//!   [`CarbonTrace`], and an optional carbon budget in g CO₂/h. A cap of
//!   `0` (or any non-finite value) means *uncapped*; with both cap and
//!   budget off the governor is [inactive](GovernorConfig::active) and
//!   the engine's behaviour is byte-identical to an ungoverned build.
//! * [`GovernorState`] — the engine-persistent machine: the current
//!   [`ServiceLevel`] rung plus a sliding window of `(arrival, joules)`
//!   samples on the **virtual arrival clock**. Checkpoints carry it, so
//!   a restored engine replays the suffix of a stream to the byte.
//!
//! # The sustained-watts estimator
//!
//! `sustained_w = (joules admitted in the trailing window) / window_s`
//! — the *energy-admission rate* over virtual arrival time. This is
//! deliberately not "power while busy": a quant step-down shrinks both
//! joules and seconds of a call, so busy-power barely moves, but the
//! energy drawn per wall-second of *workload* drops — which is what a
//! battery or a power cap actually integrates. The estimator always
//! runs (reports carry `sustained_watts_max` even uncapped); only the
//! *decision* step is gated on [`GovernorConfig::active`].
//!
//! # The decision rule
//!
//! At each stage-5 admission offer the governor projects serving the
//! request at full fidelity *plus an Economy-sized reserve*:
//! `(window + full_joules + eco_joules) / window_s` against the cap,
//! and `projected_w × intensity(now) / 1000` (g CO₂/h) against the
//! carbon budget. Over either bound → descend one rung to
//! [`ServiceLevel::Economy`] (one quant step coarser — fewer weight
//! bytes per decode token, the dominant energy term). Back under both
//! bounds with [`ASCEND_HEADROOM`] margin → ascend to Full. The
//! reserve exists because a plain `window + full` rule fills the window
//! flush to the cap and only *then* descends — the admission that
//! triggers the descent would land the window above the cap; reserving
//! the step-down's own joules keeps every Full-rung admission strictly
//! under it. The served level follows the rung with one guard: a
//! coarse-quant call that *fails* decodes longer than its full-fidelity
//! twin and can cost **more** joules, so while the rung is Economy the
//! governor serves whichever variant admits fewer joules. The
//! [`ServiceLevel::Floor`] rung stays the admission layer's: the
//! selection-free full catalog *costs more joules* than selected
//! service, so it is never an energy descent target.
//!
//! # The compliance band
//!
//! A two-rung quant ladder bounds the sustained draw only for caps
//! **above the all-Economy sustained peak** of the offered load. During
//! an Economy hold there is no cheaper rung left, so arrivals admit
//! unchecked at the Economy rate; if that rate alone breaches the cap,
//! no quant actuator can comply — shedding or deferral (an admission
//! policy, not a fidelity policy) is the only instrument below the
//! band.
//!
//! Decisions are keyed to the virtual arrival clock and the submission
//! order only — never wall time, thread count or batch chopping — so a
//! governed replay is bit-identical across workers.

use std::collections::VecDeque;

use lim_core::ServiceLevel;
use lim_workloads::carbon::CarbonTrace;

use crate::engine::RequestOutcome;

/// Ascend only when the full-fidelity projection clears the budget with
/// this much headroom; between `0.9·cap` and `cap` the governor holds
/// its rung. Without the band it would flap on every request at the
/// boundary (descend, window drains, ascend, window refills, …).
pub const ASCEND_HEADROOM: f64 = 0.9;

/// Fallback sliding-window length when the configured one is degenerate.
const DEFAULT_WINDOW_S: f64 = 60.0;

/// Power/carbon governor knobs (all off by default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorConfig {
    /// Sustained-power cap in watts over the sliding window. `0.0` or
    /// any non-finite value means uncapped.
    pub power_cap_w: f64,
    /// Sliding estimation window in virtual seconds.
    pub window_s: f64,
    /// Seed of the synthetic day-long [`CarbonTrace`] the engine samples
    /// at virtual time (used for gCO₂ accounting whether or not a carbon
    /// budget is set).
    pub carbon_seed: u64,
    /// Carbon budget in grams CO₂ per hour of sustained draw. `0.0` or
    /// any non-finite value means unbudgeted.
    pub carbon_budget_g_per_h: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            power_cap_w: 0.0,
            window_s: DEFAULT_WINDOW_S,
            carbon_seed: 0,
            carbon_budget_g_per_h: 0.0,
        }
    }
}

impl GovernorConfig {
    /// Whether a finite, positive power cap is set.
    pub fn power_capped(&self) -> bool {
        self.power_cap_w > 0.0 && self.power_cap_w.is_finite()
    }

    /// Whether a finite, positive carbon budget is set.
    pub fn carbon_capped(&self) -> bool {
        self.carbon_budget_g_per_h > 0.0 && self.carbon_budget_g_per_h.is_finite()
    }

    /// Whether the governor actuates at all. An infinite (or zero, or
    /// NaN) cap normalizes to *inactive*, so a `--power-cap-w inf` run
    /// is byte-identical to an ungoverned one by construction.
    pub fn active(&self) -> bool {
        self.power_capped() || self.carbon_capped()
    }

    /// Canonical form: degenerate caps/budgets collapse to the `0.0`
    /// "off" encoding and a degenerate window to the default, so every
    /// equivalent configuration checkpoints — and validates — as the
    /// same bytes.
    pub(crate) fn normalized(mut self) -> Self {
        if !self.power_capped() {
            self.power_cap_w = 0.0;
        }
        if !self.carbon_capped() {
            self.carbon_budget_g_per_h = 0.0;
        }
        if !(self.window_s.is_finite() && self.window_s > 0.0) {
            self.window_s = DEFAULT_WINDOW_S;
        }
        self
    }
}

/// The engine-persistent governor machine: current rung, virtual clock,
/// and the sliding window of admitted-energy samples.
///
/// The window sum is recomputed front-to-back at every use instead of
/// being maintained incrementally: an incremental sum accumulates
/// floating-point drift that depends on the *history* of additions and
/// subtractions, which a checkpoint restore cannot replay — summing the
/// resident samples in deque order is a pure function of the restored
/// state, so live and restored engines agree to the bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorState {
    level: ServiceLevel,
    clock_s: f64,
    window: VecDeque<(f64, f64)>,
}

impl Default for GovernorState {
    fn default() -> Self {
        Self::new()
    }
}

impl GovernorState {
    /// A fresh governor: full fidelity, empty window, clock at zero.
    pub fn new() -> Self {
        Self {
            level: ServiceLevel::Full,
            clock_s: 0.0,
            window: VecDeque::new(),
        }
    }

    /// Rebuilds a checkpointed governor (the snapshot restore path).
    pub(crate) fn restore(level: ServiceLevel, clock_s: f64, window: Vec<(f64, f64)>) -> Self {
        Self {
            level,
            clock_s,
            window: window.into(),
        }
    }

    /// The current service rung.
    pub fn level(&self) -> ServiceLevel {
        self.level
    }

    /// The latest virtual instant the governor observed.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// The resident `(arrival_s, joules)` samples, oldest first.
    pub(crate) fn window(&self) -> &VecDeque<(f64, f64)> {
        &self.window
    }

    /// Advances the virtual clock monotonically and evicts samples that
    /// fell out of the trailing window. Returns the effective now.
    fn advance(&mut self, config: &GovernorConfig, arrival_s: f64) -> f64 {
        if arrival_s.is_finite() && arrival_s > self.clock_s {
            self.clock_s = arrival_s;
        }
        let horizon = self.clock_s - config.window_s;
        while self.window.front().is_some_and(|(t, _)| *t <= horizon) {
            self.window.pop_front();
        }
        self.clock_s
    }

    /// Joules resident in the window, summed oldest-first (see the type
    /// docs for why this is never maintained incrementally).
    fn window_joules(&self) -> f64 {
        self.window.iter().map(|(_, j)| *j).sum()
    }

    /// One governor decision at an admission offer: project serving this
    /// request at full fidelity against the cap and the carbon budget,
    /// and move one rung accordingly. Returns the level to *serve* at,
    /// which follows the rung with one guard: a coarse-quant call that
    /// fails decodes longer than the full-fidelity one, so an Economy
    /// variant can cost **more** joules than Full — stepping down would
    /// then admit more energy, the opposite of what the rung is for.
    /// While the rung is Economy the governor serves whichever variant
    /// admits fewer joules.
    pub(crate) fn decide(
        &mut self,
        config: &GovernorConfig,
        carbon: &CarbonTrace,
        arrival_s: f64,
        full_joules: f64,
        eco_joules: f64,
    ) -> ServiceLevel {
        let now = self.advance(config, arrival_s);
        // Project this request at full fidelity *plus* one step-down
        // admission of reserve. Without the reserve the stay-at-Full
        // rule fills the window flush to the cap, and the admission
        // that finally triggers the descent necessarily lands the
        // window *above* it — the breach is only detectable after the
        // cap-filling admission. Reserving the Economy variant's joules
        // keeps every compliant admission strictly under the cap.
        let projected_w =
            (self.window_joules() + full_joules + eco_joules.max(0.0)) / config.window_s;
        let over = |headroom: f64| {
            (config.power_capped() && projected_w > headroom * config.power_cap_w)
                || (config.carbon_capped()
                    && projected_w * carbon.intensity_at(now) / 1000.0
                        > headroom * config.carbon_budget_g_per_h)
        };
        self.level = match self.level {
            ServiceLevel::Full if over(1.0) => ServiceLevel::Economy,
            ServiceLevel::Economy if !over(ASCEND_HEADROOM) => ServiceLevel::Full,
            level => level,
        };
        match self.level {
            ServiceLevel::Economy if eco_joules < full_joules => ServiceLevel::Economy,
            _ => ServiceLevel::Full,
        }
    }

    /// Records the energy actually admitted at `arrival_s` (`0.0` for a
    /// shed request — it still advances the clock) and returns the
    /// sustained watts over the window after the observation.
    pub(crate) fn observe(&mut self, config: &GovernorConfig, arrival_s: f64, joules: f64) -> f64 {
        let now = self.advance(config, arrival_s);
        if joules > 0.0 {
            self.window.push_back((now, joules));
        }
        self.window_joules() / config.window_s
    }
}

/// Per-stream energy bookkeeping: what one replay's `energy` report
/// section is computed from. Indexed in global submission order, filled
/// at disposition-resolution time (a request's final joules include its
/// queue-wait idle draw, known only once it dispatches).
#[derive(Debug, Clone, Default)]
pub(crate) struct EnergyLedger {
    /// Final joules per request (execution + queue-wait idle). Shed
    /// requests never execute and are never recorded (slots stay `0.0`;
    /// aggregation skips them by disposition).
    pub(crate) joules: Vec<f64>,
    /// Grams CO₂ per request: final joules × grid intensity at arrival.
    pub(crate) grams: Vec<f64>,
    /// Governor rung changes during this stream.
    pub(crate) transitions: u64,
    /// Max of the sustained-watts estimator over this stream.
    pub(crate) sustained_watts_max: f64,
}

impl EnergyLedger {
    /// Records one resolved request's final energy.
    pub(crate) fn record(&mut self, index: usize, joules: f64, grams: f64) {
        if self.joules.len() <= index {
            self.joules.resize(index + 1, 0.0);
            self.grams.resize(index + 1, 0.0);
        }
        self.joules[index] = joules;
        self.grams[index] = grams;
    }
}

/// Everything the aggregation stage needs to resolve governed requests
/// and fill the report's `energy` section.
pub(crate) struct EnergyAccounting<'a> {
    /// Economy-rung alternatives, index-aligned with the full-quality
    /// outcomes; `None` when the stream never computed them (inactive
    /// governor).
    pub(crate) eco_outcomes: Option<&'a [RequestOutcome]>,
    /// The governor's rung per request in submission order (all
    /// [`ServiceLevel::Full`] when inactive).
    pub(crate) chosen: &'a [ServiceLevel],
    /// The stream's energy ledger.
    pub(crate) ledger: &'a EnergyLedger,
    /// Governor knobs to report instead of the composing engine's own
    /// config — the fleet's *overall* report shows the fleet-wide cap,
    /// not the apportioned slice of whichever engine composed it.
    pub(crate) knobs: Option<GovernorConfig>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capped(cap: f64, window: f64) -> GovernorConfig {
        GovernorConfig {
            power_cap_w: cap,
            window_s: window,
            ..GovernorConfig::default()
        }
    }

    #[test]
    fn degenerate_caps_normalize_to_inactive() {
        for cap in [0.0, -3.0, f64::INFINITY, f64::NAN] {
            let config = capped(cap, 60.0).normalized();
            assert!(!config.active(), "cap {cap} must be inactive");
            assert_eq!(config.power_cap_w, 0.0);
        }
        assert!(capped(25.0, 60.0).normalized().active());
        let bad_window = capped(25.0, f64::NAN).normalized();
        assert_eq!(bad_window.window_s, DEFAULT_WINDOW_S);
    }

    #[test]
    fn governor_descends_over_cap_and_ascends_with_headroom() {
        // Cap 10 W over a 10 s window = 100 J of budget.
        let config = capped(10.0, 10.0);
        let carbon = CarbonTrace::new(0);
        let mut state = GovernorState::new();
        // 40 J at t=0: projecting another 40 J stays under 100 J.
        assert_eq!(
            state.decide(&config, &carbon, 0.0, 40.0, 25.0),
            ServiceLevel::Full
        );
        state.observe(&config, 0.0, 40.0);
        state.observe(&config, 1.0, 40.0);
        // 80 J resident; projecting 40 J more breaches 100 J → descend.
        assert_eq!(
            state.decide(&config, &carbon, 2.0, 40.0, 25.0),
            ServiceLevel::Economy
        );
        state.observe(&config, 2.0, 25.0);
        // Still 105 J projected at t=3 → hold Economy.
        assert_eq!(
            state.decide(&config, &carbon, 3.0, 40.0, 25.0),
            ServiceLevel::Economy
        );
        // At t=10.5 the t=0 sample evicted (65 J resident → 105 J
        // projected, above the 90 J ascend bound): hold. At t=20 the
        // window is empty (40 J projected < 90 J headroom): ascend.
        assert_eq!(
            state.decide(&config, &carbon, 10.5, 40.0, 25.0),
            ServiceLevel::Economy
        );
        assert_eq!(
            state.decide(&config, &carbon, 20.0, 40.0, 25.0),
            ServiceLevel::Full
        );
    }

    #[test]
    fn holds_economy_inside_the_hysteresis_band() {
        // 95 J projected sits between 0.9·cap (90 J) and cap (100 J):
        // too high to ascend, not high enough to have descended.
        let config = capped(10.0, 10.0);
        let carbon = CarbonTrace::new(0);
        let mut state = GovernorState::new();
        state.observe(&config, 0.0, 96.0);
        assert_eq!(
            state.decide(&config, &carbon, 1.0, 10.0, 7.0),
            ServiceLevel::Economy
        );
        state.window.clear();
        state.observe(&config, 1.0, 85.0);
        assert_eq!(
            state.decide(&config, &carbon, 2.0, 10.0, 7.0),
            ServiceLevel::Economy,
            "95 J projected is inside the hold band"
        );
        state.window.clear();
        state.observe(&config, 2.0, 70.0);
        assert_eq!(
            state.decide(&config, &carbon, 3.0, 10.0, 7.0),
            ServiceLevel::Full,
            "80 J projected clears the 90 J ascend bound"
        );
    }

    #[test]
    fn inactive_governor_never_descends() {
        let config = GovernorConfig::default();
        let carbon = CarbonTrace::new(0);
        let mut state = GovernorState::new();
        for i in 0..50 {
            state.observe(&config, i as f64 * 0.01, 1e9);
            assert_eq!(
                state.decide(&config, &carbon, i as f64 * 0.01, 1e9, 5e8),
                ServiceLevel::Full
            );
        }
    }

    #[test]
    fn carbon_budget_descends_when_intensity_spikes() {
        // Budget chosen so the same watts fit at the overnight trough
        // but breach at the evening peak (intensity > 1.2× trough).
        let carbon = CarbonTrace::new(0);
        let trough_t = 3.5 * 3600.0;
        let peak_t = 19.5 * 3600.0;
        let watts = 10.0;
        let budget =
            watts / 1000.0 * (carbon.intensity_at(trough_t) + carbon.intensity_at(peak_t)) / 2.0;
        let config = GovernorConfig {
            carbon_budget_g_per_h: budget,
            window_s: 10.0,
            ..GovernorConfig::default()
        };
        let mut trough = GovernorState::new();
        trough.observe(&config, trough_t, 50.0);
        assert_eq!(
            trough.decide(&config, &carbon, trough_t + 1.0, 50.0, 35.0),
            ServiceLevel::Full,
            "100 J / 10 s = 10 W fits the budget at trough intensity"
        );
        let mut peak = GovernorState::new();
        peak.observe(&config, peak_t, 50.0);
        assert_eq!(
            peak.decide(&config, &carbon, peak_t + 1.0, 50.0, 35.0),
            ServiceLevel::Economy,
            "the same watts breach the budget at peak intensity"
        );
    }

    #[test]
    fn economy_rung_serves_full_when_the_step_down_costs_more() {
        // Force a descent, then offer a request whose Economy variant is
        // *more* expensive (a coarse-quant failure decoding longer): the
        // rung stays Economy but the served level is Full — stepping
        // down would admit more energy, not less.
        let config = capped(10.0, 10.0);
        let carbon = CarbonTrace::new(0);
        let mut state = GovernorState::new();
        state.observe(&config, 0.0, 90.0);
        assert_eq!(
            state.decide(&config, &carbon, 1.0, 40.0, 55.0),
            ServiceLevel::Full,
            "eco 55 J ≥ full 40 J: serve the cheaper full variant"
        );
        assert_eq!(
            state.level(),
            ServiceLevel::Economy,
            "the rung itself still descended"
        );
        assert_eq!(
            state.decide(&config, &carbon, 1.5, 40.0, 25.0),
            ServiceLevel::Economy,
            "a genuinely cheaper step-down serves Economy"
        );
    }

    #[test]
    fn window_sum_is_identical_after_restore() {
        let config = capped(10.0, 100.0);
        let mut live = GovernorState::new();
        for i in 0..40 {
            live.observe(&config, i as f64 * 0.37, 0.1 + i as f64 * 0.013);
        }
        let restored = GovernorState::restore(
            live.level(),
            live.clock_s(),
            live.window().iter().copied().collect(),
        );
        assert_eq!(live, restored);
        assert_eq!(
            live.window_joules().to_bits(),
            restored.window_joules().to_bits(),
            "deque-order summation must be restore-invariant"
        );
    }

    #[test]
    fn shed_observations_advance_the_clock_without_energy() {
        let config = capped(10.0, 5.0);
        let mut state = GovernorState::new();
        state.observe(&config, 0.0, 30.0);
        assert!(state.observe(&config, 100.0, 0.0) == 0.0);
        assert!(state.window().is_empty(), "old sample evicted, none added");
        assert_eq!(state.clock_s(), 100.0);
    }
}
