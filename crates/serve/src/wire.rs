//! `lim/wire-v1` — the line-delimited JSON wire protocol of the
//! ingestion front-end.
//!
//! `lim serve --stdin` (and `--listen`) speak a newline-delimited JSON
//! framing: every line is one JSON object carrying a `"frame"` tag.  The
//! client opens with a `hello` frame describing the stream (which
//! workload the query indices refer to, the seed/skew metadata echoed
//! into the report, and the arrival process), then sends one `request`
//! frame per arriving request, interleaved with optional `register` /
//! `retire` frames that mutate the live catalog at exactly that stream
//! position.  The server answers with `ready`, then a `disposition`
//! frame per resolved request (plus a `latency` frame for the ones that
//! actually executed), a `catalog` frame acknowledging each applied
//! mutation with the epoch it advanced to, and — once the client half
//! closes — one final `report` frame that is the ordinary
//! `lim-serve/report-v5` document (energy section included) with an
//! additive `"frame": "report"` tag.
//!
//! This module is the **pure codec**: parsing client frames and building
//! server frames, with no I/O.  The read/write loop (stdin, unix
//! sockets, signals) lives in the `lim` binary — the deterministic core
//! stays testable and the async shell stays thin.  The full frame table
//! and the versioning rule are documented in `docs/SCHEMAS.md`.
//!
//! # Examples
//!
//! ```
//! use lim_serve::wire::{parse_client_frame, ClientFrame, WIRE_PROTO};
//!
//! let hello = parse_client_frame(
//!     r#"{"frame":"hello","proto":"lim/wire-v1","benchmark":"bfcl",
//!         "pool_size":60,"trace_seed":7,"zipf_s":1.0,
//!         "arrivals":"back-to-back"}"#,
//! )
//! .expect("valid hello");
//! match hello {
//!     ClientFrame::Hello(h) => assert_eq!(h.benchmark, "bfcl"),
//!     other => panic!("expected hello, got {other:?}"),
//! }
//! assert_eq!(WIRE_PROTO, "lim/wire-v1");
//! ```

use lim_json::Value;
use lim_tools::ToolDoc;
use lim_workloads::trace::{ArrivalProcess, ChurnOp, SessionTrace, TraceBuilder};

use crate::admission::Disposition;
use crate::report::ServeReport;
use crate::session::RequestEvent;

/// Protocol identifier carried by the `hello` frame. Bumped only when a
/// frame is renamed, removed or changes meaning; adding a frame kind or
/// an optional field is additive and keeps the id.
pub const WIRE_PROTO: &str = "lim/wire-v1";

/// The stream header: everything `lim serve` must know before the first
/// request — which workload the query indices index into, the metadata
/// echoed into the report, and whether the stream is open-loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// Workload the `request.query` indices refer to (`"bfcl"`/…).
    pub benchmark: String,
    /// Query-pool size the indices were drawn from; the server rejects
    /// the stream if it disagrees with the workload it loaded.
    pub pool_size: usize,
    /// Seed the stream was drawn with; echoed as the report's
    /// `trace_seed`.
    pub trace_seed: u64,
    /// Zipf popularity exponent; echoed into the report.
    pub zipf_s: f64,
    /// Arrival process ([`ArrivalProcess::label`] form on the wire).
    /// Anything but back-to-back makes the stream open-loop: every
    /// request must then carry `arrival_us`.
    pub arrivals: ArrivalProcess,
    /// Session count to report, when the sender knows it (an encoded
    /// trace does). Absent on the wire when unknown.
    pub sessions: Option<usize>,
    /// How many tenants the stream's `tenant` fields index into
    /// (`0..tenants`). Omitted on the wire when 1 — a single-tenant
    /// stream is byte-identical to the pre-tenancy protocol. A value
    /// above 1 asks the server to serve the stream through a fleet.
    pub tenants: usize,
}

/// One parsed client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Stream header; must be the first frame.
    Hello(Hello),
    /// One arriving request.
    Request {
        /// Tenant the request belongs to. Omitted on the wire when 0
        /// (the single-tenant default). An id outside the fleet's range
        /// is answered with a typed `error` frame — the stream
        /// survives.
        tenant: u64,
        /// Session the request belongs to.
        session: u64,
        /// Index into the workload's query pool.
        query: usize,
        /// Virtual arrival stamp in integer microseconds — required on
        /// open-loop streams, forbidden on back-to-back ones (the same
        /// rule `trace-v1` documents follow).
        arrival_us: Option<u64>,
    },
    /// Live-catalog mutation: register the tool this document describes.
    /// Applied at the stream position the frame arrives at — after every
    /// request already sent, before the next one.
    Register {
        /// Tenant whose catalog grows. Omitted on the wire when 0.
        tenant: u64,
        /// The tool to register.
        tool: ToolDoc,
    },
    /// Live-catalog mutation: retire the tool at this registry index.
    Retire {
        /// Tenant whose catalog shrinks. Omitted on the wire when 0.
        tenant: u64,
        /// Registry index of the tool to retire.
        id: usize,
    },
}

fn field_u64(doc: &Value, field: &'static str) -> Result<u64, String> {
    match doc.get(field).and_then(Value::as_i64) {
        Some(x) if x >= 0 => Ok(x as u64),
        Some(x) => Err(format!("{field} is negative ({x})")),
        None => Err(format!("missing {field}")),
    }
}

/// The optional `tenant` field of a request/register/retire frame;
/// absent means tenant 0, the single-tenant default.
fn optional_tenant(doc: &Value) -> Result<u64, String> {
    match doc.get("tenant") {
        None => Ok(0),
        Some(_) => field_u64(doc, "tenant"),
    }
}

/// Parses one client line.
///
/// # Errors
///
/// Returns a description of the first problem: non-JSON input, a
/// missing/unknown `frame` tag, an unsupported `proto`, or a
/// missing/negative field.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, String> {
    let doc = lim_json::parse(line).map_err(|e| format!("bad frame JSON: {e}"))?;
    let frame = doc
        .get("frame")
        .and_then(Value::as_str)
        .ok_or("missing frame tag")?;
    match frame {
        "hello" => {
            let proto = doc
                .get("proto")
                .and_then(Value::as_str)
                .ok_or("hello missing proto")?;
            if proto != WIRE_PROTO {
                return Err(format!(
                    "unsupported wire proto {proto:?} (want {WIRE_PROTO:?})"
                ));
            }
            let arrivals = ArrivalProcess::parse(
                doc.get("arrivals")
                    .and_then(Value::as_str)
                    .ok_or("hello missing arrivals")?,
            )?;
            Ok(ClientFrame::Hello(Hello {
                benchmark: doc
                    .get("benchmark")
                    .and_then(Value::as_str)
                    .ok_or("hello missing benchmark")?
                    .to_owned(),
                pool_size: field_u64(&doc, "pool_size")? as usize,
                trace_seed: field_u64(&doc, "trace_seed")?,
                zipf_s: doc
                    .get("zipf_s")
                    .and_then(Value::as_f64)
                    .ok_or("hello missing zipf_s")?,
                arrivals,
                sessions: match doc.get("sessions") {
                    None => None,
                    Some(_) => Some(field_u64(&doc, "sessions")? as usize),
                },
                tenants: match doc.get("tenants") {
                    None => 1,
                    Some(_) => match field_u64(&doc, "tenants")? as usize {
                        0 => return Err("hello declares zero tenants".to_owned()),
                        n => n,
                    },
                },
            }))
        }
        "request" => Ok(ClientFrame::Request {
            tenant: optional_tenant(&doc)?,
            session: field_u64(&doc, "session")?,
            query: field_u64(&doc, "query")? as usize,
            arrival_us: match doc.get("arrival_us") {
                None => None,
                Some(_) => Some(field_u64(&doc, "arrival_us")?),
            },
        }),
        "register" => {
            let tool = doc.get("tool").ok_or("register frame missing tool")?;
            Ok(ClientFrame::Register {
                tenant: optional_tenant(&doc)?,
                tool: ToolDoc::from_json(tool).map_err(|e| format!("register frame: {e}"))?,
            })
        }
        "retire" => Ok(ClientFrame::Retire {
            tenant: optional_tenant(&doc)?,
            id: field_u64(&doc, "id")? as usize,
        }),
        other => Err(format!("unknown client frame {other:?}")),
    }
}

/// Builds the `hello` frame for a stream with the given header.
pub fn hello_frame(hello: &Hello) -> Value {
    let mut doc = Value::object([
        ("frame", Value::from("hello")),
        ("proto", Value::from(WIRE_PROTO)),
        ("benchmark", Value::from(hello.benchmark.as_str())),
        ("pool_size", Value::from(hello.pool_size)),
        ("trace_seed", Value::from(hello.trace_seed as i64)),
        ("zipf_s", Value::from(hello.zipf_s)),
        ("arrivals", Value::from(hello.arrivals.label())),
    ]);
    if let Some(sessions) = hello.sessions {
        doc.insert("sessions", Value::from(sessions));
    }
    if hello.tenants != 1 {
        doc.insert("tenants", Value::from(hello.tenants));
    }
    doc
}

/// Builds one `request` frame. Tenant 0 (the single-tenant default)
/// omits the `tenant` field, keeping single-tenant streams
/// byte-identical to the pre-tenancy protocol.
pub fn request_frame(tenant: u64, session: u64, query: usize, arrival_us: Option<u64>) -> Value {
    let mut doc = Value::object([
        ("frame", Value::from("request")),
        ("session", Value::from(session as i64)),
        ("query", Value::from(query)),
    ]);
    if tenant != 0 {
        doc.insert("tenant", Value::from(tenant as i64));
    }
    if let Some(us) = arrival_us {
        doc.insert("arrival_us", Value::from(us as i64));
    }
    doc
}

/// Builds one `register` frame announcing a live tool registration on
/// `tenant`'s catalog (the field is omitted for tenant 0).
pub fn register_frame(tenant: u64, doc: &ToolDoc) -> Value {
    let mut frame = Value::object([("frame", Value::from("register")), ("tool", doc.to_json())]);
    if tenant != 0 {
        frame.insert("tenant", Value::from(tenant as i64));
    }
    frame
}

/// Builds one `retire` frame announcing a live tool retirement from
/// `tenant`'s catalog (the field is omitted for tenant 0).
pub fn retire_frame(tenant: u64, id: usize) -> Value {
    let mut frame = Value::object([("frame", Value::from("retire")), ("id", Value::from(id))]);
    if tenant != 0 {
        frame.insert("tenant", Value::from(tenant as i64));
    }
    frame
}

/// Builds the server's `catalog` acknowledgement of an applied mutation:
/// the op it applied (`"register"`/`"retire"`), the registry index it
/// affected, and the catalog epoch the engine advanced to — how a client
/// confirms its mutation is live before relying on it.
pub fn catalog_frame(op: &str, id: usize, epoch: u64) -> Value {
    debug_assert!(op == "register" || op == "retire");
    Value::object([
        ("frame", Value::from("catalog")),
        ("op", Value::from(op)),
        ("id", Value::from(id)),
        ("epoch", Value::from(epoch as i64)),
    ])
}

/// Builds the server's `ready` acknowledgement of a `hello`.
pub fn ready_frame() -> Value {
    Value::object([
        ("frame", Value::from("ready")),
        ("proto", Value::from(WIRE_PROTO)),
    ])
}

/// Builds the `disposition` frame of a resolved request: its ticket
/// (zero-based submission index), a `status` of `"served"`,
/// `"degraded"` or `"shed"`, and the queue wait for admitted requests.
pub fn disposition_frame(event: &RequestEvent) -> Value {
    let status = match event.disposition {
        Disposition::Served { .. } => "served",
        Disposition::Degraded { .. } => "degraded",
        Disposition::Shed => "shed",
    };
    let mut doc = Value::object([
        ("frame", Value::from("disposition")),
        ("ticket", Value::from(event.ticket.index())),
        ("status", Value::from(status)),
    ]);
    if let Some(wait_s) = event.disposition.wait_s() {
        doc.insert("wait_s", Value::from(wait_s));
    }
    doc
}

/// Builds the `latency` frame billing an executed request's simulated
/// service seconds. Shed requests never execute and get none.
pub fn latency_frame(ticket: usize, service_s: f64) -> Value {
    Value::object([
        ("frame", Value::from("latency")),
        ("ticket", Value::from(ticket)),
        ("service_s", Value::from(service_s)),
    ])
}

/// Frames announcing one resolved request: its `disposition`, plus a
/// `latency` frame when it actually executed.
pub fn event_frames(event: &RequestEvent) -> Vec<Value> {
    let mut frames = vec![disposition_frame(event)];
    if let Some(service_s) = event.service_s {
        frames.push(latency_frame(event.ticket.index(), service_s));
    }
    frames
}

/// Builds an `error` frame; the server sends one and closes on a
/// protocol violation.
pub fn error_frame(message: &str) -> Value {
    Value::object([
        ("frame", Value::from("error")),
        ("message", Value::from(message)),
    ])
}

/// Builds the final `report` frame: the ordinary `lim-serve/report-v2`
/// document with an additive `"frame": "report"` tag, so the stream's
/// last line parses both as a wire frame and as a report file.
pub fn report_frame(report: &ServeReport) -> Value {
    let mut doc = report.to_json();
    doc.insert("frame", Value::from("report"));
    doc
}

/// Encodes a whole trace as a `lim/wire-v1` client stream — one `hello`
/// line, then one `request` line per request in canonical session-major
/// order, with any churn events emitted as `register`/`retire` lines at
/// their [`ChurnEvent::after_requests`] positions. `lim wire` uses this,
/// and CI pipes the result into `lim serve --stdin` to assert the
/// streamed path reproduces the offline replay bit-for-bit.
///
/// [`ChurnEvent::after_requests`]: lim_workloads::trace::ChurnEvent
pub fn trace_to_wire(trace: &SessionTrace) -> String {
    let mut out = String::new();
    let hello = Hello {
        benchmark: trace.benchmark.clone(),
        pool_size: trace.pool_size,
        trace_seed: trace.seed,
        zipf_s: trace.zipf_s,
        arrivals: trace.arrivals,
        sessions: Some(trace.sessions.len()),
        tenants: trace.tenants,
    };
    out.push_str(&hello_frame(&hello).to_string());
    out.push('\n');
    let mut churn = trace.churn.iter().peekable();
    let mut emit_churn_at = |sent: usize, out: &mut String| {
        while let Some(e) = churn.next_if(|e| e.after_requests <= sent) {
            let frame = match &e.op {
                ChurnOp::Register(doc) => register_frame(e.tenant, doc),
                ChurnOp::Retire(id) => retire_frame(e.tenant, *id),
            };
            out.push_str(&frame.to_string());
            out.push('\n');
        }
    };
    let timed = trace.arrivals != ArrivalProcess::BackToBack;
    let mut sent = 0usize;
    for session in &trace.sessions {
        for (i, &query) in session.query_indices.iter().enumerate() {
            emit_churn_at(sent, &mut out);
            let arrival_us = timed.then(|| session.arrival_us[i]);
            out.push_str(&request_frame(session.tenant, session.id, query, arrival_us).to_string());
            out.push('\n');
            sent += 1;
        }
    }
    emit_churn_at(sent, &mut out);
    out
}

/// Starts a [`TraceBuilder`] from a parsed [`Hello`] — the decode half
/// of [`trace_to_wire`]. Feeding every subsequent `request` frame into
/// [`TraceBuilder::push`] (and `register`/`retire` frames into
/// [`TraceBuilder::push_register`]/[`TraceBuilder::push_retire`])
/// reassembles the original trace.
///
/// # Errors
///
/// Propagates the builder's pool-size sanity bound.
pub fn builder_from_hello(hello: &Hello) -> Result<TraceBuilder, String> {
    TraceBuilder::new(
        &hello.benchmark,
        hello.trace_seed,
        hello.zipf_s,
        hello.pool_size,
        hello.arrivals,
    )?
    .with_tenants(hello.tenants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Ticket;
    use lim_workloads::trace::{zipf_trace, TraceConfig};

    fn sample_trace(arrivals: ArrivalProcess) -> SessionTrace {
        let workload = lim_workloads::bfcl(42, 60);
        zipf_trace(
            &workload,
            &TraceConfig {
                seed: 9,
                sessions: 6,
                arrivals,
                ..TraceConfig::default()
            },
        )
    }

    #[test]
    fn wire_round_trips_a_back_to_back_trace() {
        let trace = sample_trace(ArrivalProcess::BackToBack);
        let stream = trace_to_wire(&trace);
        let mut lines = stream.lines();
        let hello = match parse_client_frame(lines.next().expect("hello line")).unwrap() {
            ClientFrame::Hello(h) => h,
            other => panic!("expected hello, got {other:?}"),
        };
        assert_eq!(hello.sessions, Some(trace.sessions.len()));
        let mut builder = builder_from_hello(&hello).unwrap();
        for line in lines {
            match parse_client_frame(line).unwrap() {
                ClientFrame::Request {
                    tenant,
                    session,
                    query,
                    arrival_us,
                } => builder
                    .push_for(tenant, session, query, arrival_us)
                    .unwrap(),
                other => panic!("expected request, got {other:?}"),
            }
        }
        assert_eq!(builder.finish(), trace);
    }

    #[test]
    fn wire_round_trips_poisson_timestamps_bit_exactly() {
        let trace = sample_trace(ArrivalProcess::Poisson { rate_rps: 3.0 });
        let stream = trace_to_wire(&trace);
        let mut lines = stream.lines();
        let hello = match parse_client_frame(lines.next().unwrap()).unwrap() {
            ClientFrame::Hello(h) => h,
            other => panic!("expected hello, got {other:?}"),
        };
        assert_eq!(hello.arrivals, trace.arrivals);
        let mut builder = builder_from_hello(&hello).unwrap();
        for line in lines {
            match parse_client_frame(line).unwrap() {
                ClientFrame::Request {
                    tenant,
                    session,
                    query,
                    arrival_us,
                } => {
                    assert!(arrival_us.is_some(), "timed stream stamps every request");
                    builder
                        .push_for(tenant, session, query, arrival_us)
                        .unwrap();
                }
                other => panic!("expected request, got {other:?}"),
            }
        }
        // Bit-exact: integer micros survive the JSON round trip untouched.
        assert_eq!(builder.finish(), trace);
    }

    #[test]
    fn wire_round_trips_churn_frames_at_their_positions() {
        let workload = lim_workloads::bfcl(42, 60);
        let trace = lim_workloads::churn::with_churn(
            &workload,
            sample_trace(ArrivalProcess::BackToBack),
            &lim_workloads::churn::ChurnConfig::default(),
        );
        assert!(!trace.churn.is_empty());
        let stream = trace_to_wire(&trace);
        let mut lines = stream.lines();
        let hello = match parse_client_frame(lines.next().unwrap()).unwrap() {
            ClientFrame::Hello(h) => h,
            other => panic!("expected hello, got {other:?}"),
        };
        let mut builder = builder_from_hello(&hello).unwrap();
        for line in lines {
            match parse_client_frame(line).unwrap() {
                ClientFrame::Request {
                    tenant,
                    session,
                    query,
                    arrival_us,
                } => builder
                    .push_for(tenant, session, query, arrival_us)
                    .unwrap(),
                ClientFrame::Register { tenant, tool } => {
                    builder.push_register_for(tenant, tool).unwrap()
                }
                ClientFrame::Retire { tenant, id } => builder.push_retire_for(tenant, id).unwrap(),
                other => panic!("unexpected frame {other:?}"),
            }
        }
        // Frame position encodes after_requests exactly, so the decoded
        // trace — churn schedule included — is the original.
        assert_eq!(builder.finish(), trace);
    }

    #[test]
    fn wire_round_trips_a_multi_tenant_trace_and_defaults_tenant_fields() {
        let workload = lim_workloads::bfcl(42, 60);
        let trace = zipf_trace(
            &workload,
            &TraceConfig {
                seed: 11,
                sessions: 8,
                tenants: 3,
                tenant_skew: 1.2,
                ..TraceConfig::default()
            },
        );
        assert!(trace.sessions.iter().any(|s| s.tenant != 0));
        let stream = trace_to_wire(&trace);
        let mut lines = stream.lines();
        let hello = match parse_client_frame(lines.next().unwrap()).unwrap() {
            ClientFrame::Hello(h) => h,
            other => panic!("expected hello, got {other:?}"),
        };
        assert_eq!(hello.tenants, 3);
        let mut builder = builder_from_hello(&hello).unwrap();
        for line in lines {
            match parse_client_frame(line).unwrap() {
                ClientFrame::Request {
                    tenant,
                    session,
                    query,
                    arrival_us,
                } => builder
                    .push_for(tenant, session, query, arrival_us)
                    .unwrap(),
                other => panic!("expected request, got {other:?}"),
            }
        }
        assert_eq!(builder.finish(), trace);

        // Single-tenant frames stay byte-identical to the pre-tenancy
        // protocol: no tenant/tenants members appear.
        let hello1 = Hello {
            benchmark: "bfcl".into(),
            pool_size: 60,
            trace_seed: 7,
            zipf_s: 1.0,
            arrivals: ArrivalProcess::BackToBack,
            sessions: None,
            tenants: 1,
        };
        assert!(hello_frame(&hello1).get("tenants").is_none());
        assert!(request_frame(0, 4, 2, None).get("tenant").is_none());
        assert_eq!(
            request_frame(2, 4, 2, None)
                .get("tenant")
                .and_then(Value::as_i64),
            Some(2)
        );
        // A zero tenant count is a malformed header, not a silent 1.
        let err = parse_client_frame(
            r#"{"frame":"hello","proto":"lim/wire-v1","benchmark":"bfcl",
                "pool_size":60,"trace_seed":7,"zipf_s":1.0,
                "arrivals":"back-to-back","tenants":0}"#,
        )
        .unwrap_err();
        assert!(err.contains("zero tenants"), "{err}");
    }

    #[test]
    fn catalog_frames_parse_and_reject_garbage() {
        match parse_client_frame(&register_frame(0, &ToolDoc::new("t", "c", "d")).to_string()) {
            Ok(ClientFrame::Register { tenant, tool }) => {
                assert_eq!((tenant, tool.name.as_str()), (0, "t"))
            }
            other => panic!("expected register, got {other:?}"),
        }
        match parse_client_frame(&retire_frame(2, 9).to_string()) {
            Ok(ClientFrame::Retire { tenant, id }) => assert_eq!((tenant, id), (2, 9)),
            other => panic!("expected retire, got {other:?}"),
        }
        let ack = catalog_frame("register", 51, 3);
        assert_eq!(ack.get("op").and_then(Value::as_str), Some("register"));
        assert_eq!(ack.get("epoch").and_then(Value::as_i64), Some(3));
        // Malformed mutations are rejected with a description.
        let err = parse_client_frame(r#"{"frame":"register"}"#).unwrap_err();
        assert!(err.contains("missing tool"), "{err}");
        let err = parse_client_frame(r#"{"frame":"register","tool":{"name":""}}"#).unwrap_err();
        assert!(err.contains("register frame"), "{err}");
        let err = parse_client_frame(r#"{"frame":"retire","id":-2}"#).unwrap_err();
        assert!(err.contains("negative"), "{err}");
    }

    #[test]
    fn hello_rejects_wrong_proto_and_unknown_frames() {
        let err = parse_client_frame(
            r#"{"frame":"hello","proto":"lim/wire-v0","benchmark":"bfcl",
                "pool_size":60,"trace_seed":7,"zipf_s":1.0,"arrivals":"back-to-back"}"#,
        )
        .unwrap_err();
        assert!(err.contains("unsupported wire proto"), "{err}");
        let err = parse_client_frame(r#"{"frame":"goodbye"}"#).unwrap_err();
        assert!(err.contains("unknown client frame"), "{err}");
        let err = parse_client_frame("not json").unwrap_err();
        assert!(err.contains("bad frame JSON"), "{err}");
    }

    #[test]
    fn server_frames_carry_the_documented_fields() {
        let served = RequestEvent {
            ticket: Ticket(3),
            disposition: Disposition::Served { wait_s: 0.25 },
            service_s: Some(1.5),
        };
        let frames = event_frames(&served);
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[0].get("frame").and_then(Value::as_str),
            Some("disposition")
        );
        assert_eq!(frames[0].get("ticket").and_then(Value::as_i64), Some(3));
        assert_eq!(
            frames[0].get("status").and_then(Value::as_str),
            Some("served")
        );
        assert_eq!(frames[0].get("wait_s").and_then(Value::as_f64), Some(0.25));
        assert_eq!(
            frames[1].get("frame").and_then(Value::as_str),
            Some("latency")
        );
        assert_eq!(
            frames[1].get("service_s").and_then(Value::as_f64),
            Some(1.5)
        );

        let shed = RequestEvent {
            ticket: Ticket(4),
            disposition: Disposition::Shed,
            service_s: None,
        };
        let frames = event_frames(&shed);
        assert_eq!(frames.len(), 1, "shed requests bill no latency");
        assert_eq!(
            frames[0].get("status").and_then(Value::as_str),
            Some("shed")
        );
        assert!(frames[0].get("wait_s").is_none());

        assert_eq!(
            ready_frame().get("proto").and_then(Value::as_str),
            Some(WIRE_PROTO)
        );
        assert_eq!(
            error_frame("boom").get("message").and_then(Value::as_str),
            Some("boom")
        );
    }
}
