//! The long-lived serving engine.
//!
//! # Determinism by construction
//!
//! The engine must produce bit-identical accuracy and cache numbers for
//! every worker count — and, since the API became incremental
//! ([`ServeEngine::begin_stream`] / [`crate::ServeSession`]), for every
//! way a request stream is chopped into batches. Shared mutable caches
//! under a lock would make hit/miss patterns depend on thread
//! interleaving, so each drained batch runs through four stages instead
//! (the staging itself lives in [`crate::session`]; this module owns the
//! per-request stage bodies and the engine state they read):
//!
//! 1. **Plan** (sequential, cheap): walk the batch's requests in
//!    canonical arrival order (`ServeEngine::plan_request`), resolve
//!    the per-session fast path and both caches on normalized-text keys
//!    only, and record each request's hit class plus a slot into a dense
//!    table of *unique* selection jobs. Cache state evolves exactly as a
//!    sequential server would evolve it — counters are charged at
//!    reservation time, so *when* a fill lands can never change them.
//! 2. **Compute** (parallel): run the unique selection jobs —
//!    recommender simulation, `Ẽ` embeddings, k-NN arbitration — over
//!    [`lim_core::sharded_map`]. Every job is a pure function of the
//!    normalized query, so shard boundaries cannot change values.
//! 3. **Fill** (sequential): write computed values into the reserved
//!    cache slots so the next batch (the engine is long-lived) starts
//!    warm.
//! 4. **Execute** (parallel): run every request's gold chain with its
//!    resolved tool selection via [`Pipeline::run_query_offered`], again
//!    over `sharded_map`, and bill per-request simulated latency.
//!
//! Stages 2 and 4 carry all the heavy work; stage 1 is string hashing and
//! O(1) cache bookkeeping. [`ServeEngine::process_trace`] is a thin
//! wrapper that opens a stream, submits the whole trace and finishes it
//! — one code path, not two.
//!
//! # Admission control
//!
//! When the stream carries open-loop arrival timestamps and
//! [`ServeConfig::admission`] enables a bounded queue, a fifth,
//! sequential stage advances the [`crate::admission`] virtual-clock
//! simulation ([`crate::admission::AdmissionSim`]) over the per-request
//! service times stages 2 and 4 produced: requests wait in a
//! per-session round-robin queue for one of the simulated executors,
//! degrade to Level-3 / selection-free service under pressure (shed
//! policy `degrade`), or are shed outright with a typed outcome once
//! the queue is full. Because the simulation is a pure sequential
//! function of deterministic inputs — and is fed incrementally, one
//! offer per request, no matter how the batches fall — queue depth,
//! wait percentiles and shed/degraded counters are bit-identical for
//! every worker count and every batching, exactly like the cache
//! counters.
//!
//! Admission is simulated at the *dispatch* boundary: the cache plan
//! (stage 1) still walks every request in canonical order, so a later
//! shed request can have warmed a key an admitted request then hits —
//! the same speculative warm-up a real engine performs in its cheap
//! control plane before the expensive execute stage is gated.

use std::collections::HashMap;
use std::sync::Arc;

use lim_core::{
    Pipeline, Policy, SearchLevel, SearchLevels, ServiceLevel, ServicePolicy, ToolController,
    ToolSelection, DEFAULT_CONTEXT, REDUCED_CONTEXT,
};
use lim_embed::Embedding;
use lim_llm::recommender::{recommend_descriptions, stable_text_seed};
use lim_llm::{ModelProfile, Quant};
use lim_tools::ToolDoc;
use lim_vecstore::VectorIndex;
use lim_workloads::trace::{ChurnEvent, ChurnOp, SessionTrace};
use lim_workloads::{Query, Workload};

use lim_core::{levels_from_snapshot, Snapshot, SnapshotError};

use lim_device::DeviceKind;
use lim_workloads::carbon::CarbonTrace;

use crate::admission::{AdmissionConfig, AdmissionOutcome, Disposition};
use crate::cache::{CacheStats, Lookup, LruCache};
use crate::catalog::{CatalogCounters, CatalogOp, CatalogRecord};
use crate::governor::{EnergyAccounting, GovernorConfig, GovernorState};
use crate::report::{
    AdmissionReport, BootReport, CatalogReport, EnergyReport, LatencyStats, ServeReport,
};
use crate::snapshot as snap;

/// Simulated seconds to decode one snapshot payload byte at boot
/// (≈1 GB/s sequential parse — the cost a snapshot boot pays instead of
/// re-embedding the catalog and re-clustering).
pub const SNAPSHOT_DECODE_SECONDS_PER_BYTE: f64 = 1e-9;

/// Serving-engine tunables.
///
/// Construct via [`ServeConfig::builder`] (or start from
/// [`ServeConfig::default`] and override fields): the struct is
/// `#[non_exhaustive]`, so downstream struct literals do not compile —
/// new knobs can join without breaking anyone.
///
/// # Examples
///
/// ```
/// use lim_serve::{AdmissionConfig, ServeConfig, ShedPolicy};
///
/// let config = ServeConfig::builder()
///     .caches(512, 2048)
///     .admission(AdmissionConfig {
///         queue_depth: 8,
///         servers: 2,
///         shed_policy: ShedPolicy::Degrade,
///     })
///     .build();
/// assert_eq!(config.embed_cache_capacity, 512);
/// assert_eq!(config.admission.servers, 2);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Tool-presentation policy served to every request.
    pub policy: Policy,
    /// Quantization of the served model.
    pub quant: Quant,
    /// Base seed for the agent-call draws (the pipeline seed).
    pub seed: u64,
    /// Capacity of the query-embedding cache.
    pub embed_cache_capacity: usize,
    /// Capacity of the tool-selection memo.
    pub memo_capacity: usize,
    /// Simulated seconds to encode one text with the sentence embedder.
    pub embed_seconds_per_text: f64,
    /// Simulated seconds for one k-NN probe against one search level.
    pub knn_seconds_per_level: f64,
    /// Pre-warm the embedding cache with the training queries at startup.
    pub prewarm: bool,
    /// Backpressure layer: bounded queue, fairness and shed policy
    /// (disabled by default — `queue_depth: 0`).
    pub admission: AdmissionConfig,
    /// Staleness bound on the Level-2 cluster summaries: once the
    /// mutations since the last refresh exceed this fraction of the live
    /// catalog, the clusters are rebuilt over the live tools
    /// (`SearchLevels::refresh_clusters`). `0.0` refreshes after every
    /// mutation; a very large value effectively disables refreshes.
    pub cluster_refresh_fraction: f64,
    /// Simulated device the engine serves on: energy physics (prefill /
    /// decode / selection joules) and idle draw. The default matches
    /// [`lim_core::Pipeline::new`]'s Jetson AGX Orin.
    pub device: DeviceKind,
    /// Power-budget governor knobs (inactive by default — no cap, no
    /// carbon budget). See [`crate::governor`].
    pub governor: GovernorConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: Policy::less_is_more(3),
            quant: Quant::Q4KM,
            seed: 0x5E37_E500, // "serve"
            embed_cache_capacity: 1024,
            memo_capacity: 4096,
            embed_seconds_per_text: 0.004,
            knn_seconds_per_level: 0.0008,
            prewarm: true,
            admission: AdmissionConfig::default(),
            cluster_refresh_fraction: 0.25,
            device: DeviceKind::AgxOrin,
            governor: GovernorConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Starts a builder seeded with [`ServeConfig::default`].
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ServeConfig`] — the supported way to construct one
/// (the config struct itself is `#[non_exhaustive]`). Every setter
/// defaults to the [`ServeConfig::default`] value when not called.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Tool-presentation policy served to every request.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Quantization of the served model.
    pub fn quant(mut self, quant: Quant) -> Self {
        self.config.quant = quant;
        self
    }

    /// Base seed for the agent-call draws (the pipeline seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Capacities of the query-embedding cache and the tool-selection
    /// memo, in entries.
    pub fn caches(mut self, embed_cache_capacity: usize, memo_capacity: usize) -> Self {
        self.config.embed_cache_capacity = embed_cache_capacity;
        self.config.memo_capacity = memo_capacity;
        self
    }

    /// Simulated cost knobs: seconds to encode one text with the
    /// sentence embedder, and seconds for one k-NN probe against one
    /// search level.
    pub fn costs(mut self, embed_seconds_per_text: f64, knn_seconds_per_level: f64) -> Self {
        self.config.embed_seconds_per_text = embed_seconds_per_text;
        self.config.knn_seconds_per_level = knn_seconds_per_level;
        self
    }

    /// Whether to pre-warm the embedding cache with the training queries
    /// at startup.
    pub fn prewarm(mut self, prewarm: bool) -> Self {
        self.config.prewarm = prewarm;
        self
    }

    /// Backpressure layer: bounded queue, fairness and shed policy.
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.config.admission = admission;
        self
    }

    /// Staleness bound on the Level-2 cluster summaries, as a fraction
    /// of the live catalog (see
    /// [`ServeConfig::cluster_refresh_fraction`]).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite fraction.
    pub fn cluster_refresh_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction >= 0.0 && fraction.is_finite(),
            "cluster refresh fraction must be finite and non-negative"
        );
        self.config.cluster_refresh_fraction = fraction;
        self
    }

    /// Simulated device the engine serves on (energy physics and idle
    /// draw).
    pub fn device(mut self, device: DeviceKind) -> Self {
        self.config.device = device;
        self
    }

    /// Power-budget governor knobs (see [`crate::governor`]). The
    /// configuration is normalized at [`build`](Self::build): a zero,
    /// negative or non-finite cap/budget collapses to the `0.0` "off"
    /// encoding, so `--power-cap-w inf` is byte-identical to ungoverned.
    pub fn governor(mut self, governor: GovernorConfig) -> Self {
        self.config.governor = governor;
        self
    }

    /// Finalizes the configuration.
    pub fn build(mut self) -> ServeConfig {
        self.config.governor = self.config.governor.normalized();
        self.config
    }
}

/// Cached latent footprint of one normalized query: the recommender's
/// descriptions plus their `Ẽ` context embeddings (and the plain query
/// embedding, which the Gorilla policy retrieves with).
#[derive(Debug, Clone)]
pub struct QueryEmbeddings {
    /// Embedding of the query text itself.
    pub query: Embedding,
    /// Recommender output (empty for non-LiM policies).
    pub recommendations: Vec<String>,
    /// One `Ẽ` context embedding per recommendation.
    pub contexts: Vec<Embedding>,
}

/// Long-lived state for one serving session.
#[derive(Debug, Clone, Default)]
pub(crate) struct SessionState {
    /// Memo key of the session's previous request.
    pub(crate) last_key: Option<String>,
    /// Resolved selection source of that request.
    pub(crate) last_selection: Option<SelectionSource>,
}

/// Where a request's tool selection comes from.
#[derive(Debug, Clone)]
pub(crate) enum SelectionSource {
    /// Policy needs no selection (vanilla full-catalog calling).
    FullCatalog,
    /// Value already resident in the memo.
    Ready(Arc<ToolSelection>),
    /// Slot in this trace's unique-job table.
    Pending(usize),
}

/// Selection-overhead class a request is billed for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CostClass {
    /// Session fast path or memo hit: lookup only, no simulated cost.
    Free,
    /// Embedding-cache hit: pay only the k-NN arbitration.
    KnnOnly,
    /// Cold miss: pay recommender + embeddings + k-NN.
    Cold,
}

/// One planned request, produced by stage 1.
#[derive(Debug, Clone)]
pub(crate) struct PlannedRequest {
    query_index: usize,
    source: SelectionSource,
    cost: CostClass,
}

/// One unique selection job, produced by stage 1 and run by stage 2.
#[derive(Debug, Clone)]
pub(crate) struct SelectionJob {
    pub(crate) key: String,
    /// First request that demanded the key (supplies the query text).
    query_index: usize,
    /// Embeddings recovered from the cache, if the embed lookup hit.
    cached_embeddings: Option<Arc<QueryEmbeddings>>,
    /// A refill for an evicted embedding entry whose memo entry is still
    /// resident: the cold-path cost is never billed, so the recommender
    /// cost simulation can be skipped.
    embeddings_only: bool,
}

/// Output of one selection job.
pub(crate) struct ComputedSelection {
    pub(crate) embeddings: Arc<QueryEmbeddings>,
    pub(crate) selection: Arc<ToolSelection>,
    /// Simulated seconds for the cold path (recommender + embed + k-NN).
    cold_seconds: f64,
    /// Simulated seconds when only the k-NN arbitration runs.
    knn_seconds: f64,
    /// Joules billed on the cold path (recommender inference).
    cold_joules: f64,
}

/// Per-request outcome used for aggregation.
#[derive(Debug, Clone)]
pub(crate) struct RequestOutcome {
    success: bool,
    tool_correct: bool,
    offered_tools: usize,
    level: Option<SearchLevel>,
    pub(crate) seconds: f64,
    pub(crate) joules: f64,
}

impl RequestOutcome {
    /// Scatter-buffer placeholder used while a fleet drain routes a
    /// batch through per-tenant engines; every slot is overwritten
    /// before any read.
    pub(crate) fn placeholder() -> Self {
        Self {
            success: false,
            tool_correct: false,
            offered_tools: 0,
            level: None,
            seconds: 0.0,
            joules: 0.0,
        }
    }
}

/// Scalar report metadata the aggregation stage needs — what a trace
/// supplies directly and a streaming session reconstructs from its
/// [`crate::StreamMeta`] plus the submitted requests.
pub(crate) struct ReportScope {
    pub(crate) trace_seed: u64,
    pub(crate) zipf_s: f64,
    pub(crate) sessions: usize,
    pub(crate) unique_queries: usize,
    pub(crate) arrivals: lim_workloads::trace::ArrivalProcess,
}

/// A long-lived serving engine: owns the catalog, the embedder and the
/// search-level indexes (Arc-shared, read-only), and keeps caches and
/// per-session controller state warm across traces.
///
/// # Examples
///
/// ```
/// use lim_serve::{ServeConfig, ServeEngine};
/// use lim_workloads::trace::{zipf_trace, TraceConfig};
///
/// let workload = lim_workloads::bfcl(7, 40);
/// let trace = zipf_trace(&workload, &TraceConfig::default());
/// let model = lim_llm::ModelProfile::by_name("llama3.1-8b").expect("model exists");
/// let mut engine = ServeEngine::new(workload, model, ServeConfig::default());
/// let report = engine.process_trace(&trace, 2).expect("trace matches workload");
/// assert_eq!(report.requests, trace.requests());
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    pub(crate) workload: Arc<Workload>,
    pub(crate) levels: Arc<SearchLevels>,
    pub(crate) model: ModelProfile,
    pub(crate) config: ServeConfig,
    pub(crate) embed_cache: LruCache<Arc<QueryEmbeddings>>,
    pub(crate) memo: LruCache<Arc<ToolSelection>>,
    pub(crate) sessions: HashMap<u64, SessionState>,
    pub(crate) session_fast_hits: u64,
    pub(crate) requests_served: u64,
    pub(crate) boot: BootReport,
    /// Catalog epoch: bumped by every register/retire; part of every
    /// cache key, so entries computed against an older catalog stop
    /// being addressable instead of being flushed.
    pub(crate) epoch: u64,
    /// Every mutation since the engine's base catalog, in order — the
    /// `catalog_log` snapshot section a booting engine replays.
    pub(crate) catalog_log: Vec<CatalogRecord>,
    pub(crate) catalog: CatalogCounters,
    /// Mutations since the last Level-2 cluster refresh.
    pub(crate) churn_since_refresh: u64,
    /// Fleet tenant id: 0 for a standalone engine (and for a fleet's
    /// tenant 0, whose cache keys are byte-identical to the standalone
    /// form — the N=1 equivalence the tenancy tests pin down). Non-zero
    /// ids prefix every cache key with `t{id}|`, so entries can never
    /// alias across tenants even if caches are ever pooled.
    pub(crate) tenant: u64,
    /// Seeded carbon-intensity trace energy accounting samples at
    /// virtual arrival time (seed = `config.governor.carbon_seed`).
    pub(crate) carbon: CarbonTrace,
    /// Engine-persistent governor machine: current service rung plus the
    /// sliding sustained-watts window. Checkpointed (always — the
    /// estimator runs even uncapped) so a restored engine replays a
    /// stream suffix to the byte.
    pub(crate) governor: GovernorState,
}

impl ServeEngine {
    /// Builds the offline search levels and starts a warm engine — a
    /// **cold boot**: the full level build and (if configured) the cache
    /// pre-warm are paid at startup. Boot from a snapshot via
    /// [`ServeEngine::from_snapshot`] to skip the build, or from a
    /// checkpoint via [`ServeEngine::from_checkpoint`] to also skip the
    /// cold-cache ramp.
    pub fn new(workload: Workload, model: ModelProfile, config: ServeConfig) -> Self {
        let levels = SearchLevels::build(&workload);
        Self::with_levels(workload, levels, model, config)
    }

    /// Starts an engine over prebuilt levels (e.g. loaded from a
    /// persisted artifact). Accounted as a cold boot: the engine cannot
    /// know how the levels were obtained.
    pub fn with_levels(
        workload: Workload,
        levels: SearchLevels,
        model: ModelProfile,
        config: ServeConfig,
    ) -> Self {
        let mut engine = Self::assemble(workload, levels, model, config);
        // Vanilla full-catalog calling never consults the caches, so
        // pre-warming would be pure startup waste.
        if engine.wants_prewarm() {
            engine.prewarm_from_training_pool();
        }
        engine.boot = engine.describe_boot("cold", false, false, 0);
        engine
    }

    /// Boots an engine from a persisted snapshot, **skipping the level
    /// build**: the embedder, tool index and clusters are decoded from
    /// the snapshot's sections instead of being recomputed. The cache
    /// pre-warm still runs as configured. Accepts both snapshot kinds —
    /// on a checkpoint file the warm-state sections are left undecoded
    /// (the lazy-loading contract; use [`ServeEngine::from_checkpoint`]
    /// to restore them).
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the container is corrupt, carries unknown
    /// sections, or records a different workload identity.
    pub fn from_snapshot(
        snapshot: &Snapshot,
        workload: Workload,
        model: ModelProfile,
        config: ServeConfig,
    ) -> Result<Self, SnapshotError> {
        snapshot.ensure_known(snap::KNOWN_SECTIONS)?;
        snap::validate_workload(snapshot, &workload)?;
        let levels = levels_from_snapshot(snapshot)?;
        let mut engine = Self::assemble(workload, levels, model, config);
        // Pre-warm *before* replaying the catalog log, mirroring live
        // history: a mutated engine pre-warmed at epoch 0 too, so its
        // seed entries sit on epoch-0 keys.
        if engine.wants_prewarm() {
            engine.prewarm_from_training_pool();
        }
        snap::apply_catalog_log(snapshot, &mut engine, "")?;
        // Bill only what this boot decoded: on a checkpoint file the
        // warm sections stay untouched, so their bytes cost nothing.
        engine.boot = engine.describe_boot("snapshot", true, false, decoded_bytes(snapshot));
        Ok(engine)
    }

    /// Boots an engine from a checkpoint, skipping **both** the level
    /// build and the cold-cache ramp: the seeded-LRU embedding cache,
    /// the selection memo (entries restored in exact LRU order) and the
    /// per-session warm-controller state resume exactly where
    /// [`ServeEngine::checkpoint`] left them, so replaying the remainder
    /// of a trace is bit-identical to never having restarted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the container is corrupt, is not a
    /// checkpoint, or was written by an engine with a different
    /// workload, model, quant, policy, seed or cache geometry.
    pub fn from_checkpoint(
        snapshot: &Snapshot,
        workload: Workload,
        model: ModelProfile,
        config: ServeConfig,
    ) -> Result<Self, SnapshotError> {
        snapshot.ensure_known(snap::KNOWN_SECTIONS)?;
        if snapshot.kind() != "checkpoint" {
            return Err(SnapshotError::Mismatch(format!(
                "kind {:?} carries no warm state; boot it with from_snapshot",
                snapshot.kind()
            )));
        }
        snap::validate_workload(snapshot, &workload)?;
        snap::validate_engine(snapshot, &model, &config, "")?;
        let levels = levels_from_snapshot(snapshot)?;
        let mut engine = Self::assemble(workload, levels, model, config);
        snap::restore_warm_state(snapshot, &mut engine, "")?;
        snap::apply_catalog_log(snapshot, &mut engine, "")?;
        engine.boot = engine.describe_boot("checkpoint", true, true, decoded_bytes(snapshot));
        Ok(engine)
    }

    /// Serializes the engine's full state — levels, indexes, both caches
    /// in deterministic LRU order, session warm state and lifetime
    /// counters — as a `lim/snapshot-v1` checkpoint. Encoding the same
    /// state twice yields byte-identical output.
    pub fn checkpoint(&self) -> Vec<u8> {
        snap::write_checkpoint(self)
    }

    fn assemble(
        workload: Workload,
        levels: SearchLevels,
        model: ModelProfile,
        config: ServeConfig,
    ) -> Self {
        Self::assemble_shared(Arc::new(workload), Arc::new(levels), model, config, 0)
    }

    /// Bare constructor over already-shared workload and levels: what a
    /// fleet uses so N tenants reference one index build (copy-on-write
    /// — a tenant's first catalog mutation forks its own copy via
    /// `Arc::make_mut`). No prewarm, neutral boot.
    pub(crate) fn assemble_shared(
        workload: Arc<Workload>,
        levels: Arc<SearchLevels>,
        model: ModelProfile,
        mut config: ServeConfig,
        tenant: u64,
    ) -> Self {
        // Canonicalize the governor knobs no matter how the config was
        // produced (builder, struct mutation, fleet apportioning) so
        // checkpoints always carry finite, comparable values.
        config.governor = config.governor.normalized();
        Self {
            workload,
            levels,
            model,
            config,
            embed_cache: LruCache::new(config.embed_cache_capacity),
            memo: LruCache::new(config.memo_capacity),
            sessions: HashMap::new(),
            session_fast_hits: 0,
            requests_served: 0,
            boot: BootReport::neutral(),
            epoch: 0,
            catalog_log: Vec::new(),
            catalog: CatalogCounters::default(),
            churn_since_refresh: 0,
            tenant,
            carbon: CarbonTrace::new(config.governor.carbon_seed),
            governor: GovernorState::new(),
        }
    }

    /// Starts one fleet tenant's engine over shared workload/levels Arcs,
    /// running the configured prewarm against the tenant's own caches.
    /// Tenant 0 is accounted as the cold boot that paid the level build;
    /// every other tenant shares that build (`"shared"` mode, build
    /// skipped) and pays only its own prewarm.
    pub(crate) fn for_tenant(
        workload: Arc<Workload>,
        levels: Arc<SearchLevels>,
        model: ModelProfile,
        config: ServeConfig,
        tenant: u64,
    ) -> Self {
        let mut engine = Self::assemble_shared(workload, levels, model, config, tenant);
        if engine.wants_prewarm() {
            engine.prewarm_from_training_pool();
        }
        engine.boot = if tenant == 0 {
            engine.describe_boot("cold", false, false, 0)
        } else {
            engine.describe_boot("shared", true, false, 0)
        };
        engine
    }

    fn wants_prewarm(&self) -> bool {
        self.config.prewarm && !matches!(self.config.policy, Policy::Default)
    }

    /// Builds the boot accounting: what this startup paid (simulated),
    /// and what it skipped. A cold boot embeds every tool description
    /// (Level 1) and the training pool (clustering), a snapshot boot
    /// pays only the decode; pre-warming bills its embeddings wherever
    /// it runs.
    pub(crate) fn describe_boot(
        &self,
        mode: &str,
        build_skipped: bool,
        prewarm_skipped: bool,
        decoded_bytes: usize,
    ) -> BootReport {
        let embed = self.config.embed_seconds_per_text;
        let build_seconds = if build_skipped {
            decoded_bytes as f64 * SNAPSHOT_DECODE_SECONDS_PER_BYTE
        } else {
            (self.levels.tool_count() + self.workload.train_queries.len()) as f64 * embed
        };
        let prewarm_seconds = if prewarm_skipped || !self.wants_prewarm() {
            0.0
        } else {
            self.workload.train_queries.len() as f64 * embed
        };
        BootReport {
            mode: mode.to_owned(),
            build_skipped,
            prewarm_skipped,
            sim_boot_seconds: build_seconds + prewarm_seconds,
            warm_embed_entries: self.embed_cache.len(),
            warm_memo_entries: self.memo.len(),
        }
    }

    /// How this engine booted and what the startup cost.
    pub fn boot(&self) -> &BootReport {
        &self.boot
    }

    /// The engine's shared, read-only search levels. Cloning the `Arc` is
    /// how additional readers (metrics exporters, debug endpoints) attach
    /// without copying an index.
    pub fn levels(&self) -> Arc<SearchLevels> {
        Arc::clone(&self.levels)
    }

    /// The workload (catalog + query pool) the engine serves.
    pub fn workload(&self) -> Arc<Workload> {
        Arc::clone(&self.workload)
    }

    /// Lifetime counters of the embedding cache.
    pub fn embed_cache_stats(&self) -> CacheStats {
        self.embed_cache.stats()
    }

    /// Lifetime counters of the selection memo.
    pub fn memo_stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Applies a fleet budget-partition decision: shrinks or grows both
    /// caches (shrinking evicts from the LRU tail, counted as ordinary
    /// evictions) and keeps the recorded config capacities in step so a
    /// checkpoint written afterwards validates against what is actually
    /// allocated.
    pub(crate) fn resize_caches(&mut self, embed_capacity: usize, memo_capacity: usize) {
        self.embed_cache.resize(embed_capacity);
        self.memo.resize(memo_capacity);
        self.config.embed_cache_capacity = embed_capacity;
        self.config.memo_capacity = memo_capacity;
    }

    /// Total requests served since startup.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Current catalog epoch: 0 until the first live mutation, then
    /// bumped by one per register/retire.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime counters of the live-catalog machinery.
    pub fn catalog_counters(&self) -> CatalogCounters {
        self.catalog
    }

    /// Every catalog mutation applied since the engine's base catalog,
    /// in order — what a snapshot persists and a boot replays.
    pub fn catalog_log(&self) -> &[CatalogRecord] {
        &self.catalog_log
    }

    /// Registers a new tool on the running engine and returns its dense
    /// catalog index. The tool is embedded with the engine's (frozen)
    /// IDF model, inserted incrementally into the Level-1 index, and the
    /// catalog epoch is bumped so every cached selection computed
    /// against the old catalog goes stale without a flush.
    ///
    /// # Errors
    ///
    /// Rejects an invalid document (empty name, duplicate param names)
    /// and a name already present in the catalog. The engine is
    /// unchanged on error.
    pub fn register_tool(&mut self, doc: &ToolDoc) -> Result<usize, String> {
        doc.validate().map_err(|e| e.to_string())?;
        let spec = doc.to_spec();
        let embedding = self.levels.embedder().embed(&spec.embedding_text());
        let index = Arc::make_mut(&mut self.workload)
            .registry
            .register(spec)
            .map_err(|e| e.to_string())?;
        Arc::make_mut(&mut self.levels)
            .register_embedded(index, &embedding)
            .expect("registry allocates dense, unused indices");
        self.bump_epoch();
        self.catalog.registered += 1;
        self.catalog_log.push(CatalogRecord {
            seq: self.epoch,
            epoch_after: self.epoch,
            op: CatalogOp::Register(doc.clone()),
        });
        self.note_churn();
        Ok(index)
    }

    /// Retires the tool at `index` from the running engine: it is
    /// tombstoned out of the Level-1 index (compacted once enough
    /// tombstones pile up), dropped from Level-3, filtered from stale
    /// Level-2 offers, and the catalog epoch is bumped. Its dense index
    /// stays allocated forever — indices are never reused.
    ///
    /// # Errors
    ///
    /// Rejects an index that is out of range or already retired. The
    /// engine is unchanged on error.
    pub fn retire_tool(&mut self, index: usize) -> Result<(), String> {
        if index >= self.levels.tool_count() {
            return Err(format!(
                "tool index {index} out of range (0..{})",
                self.levels.tool_count()
            ));
        }
        let compacted = Arc::make_mut(&mut self.levels)
            .retire(index)
            .map_err(|e| e.to_string())?;
        self.bump_epoch();
        self.catalog.retired += 1;
        if compacted {
            self.catalog.compactions += 1;
        }
        self.catalog_log.push(CatalogRecord {
            seq: self.epoch,
            epoch_after: self.epoch,
            op: CatalogOp::Retire(index),
        });
        self.note_churn();
        Ok(())
    }

    /// Advances the epoch, counting how many memo entries the bump
    /// strands. Stale entries are *not* evicted — they age out of the
    /// LRU under normal pressure; the count just keeps the report
    /// honest.
    fn bump_epoch(&mut self) {
        let stale_tag = format!("|e{}|", self.epoch);
        self.catalog.memo_invalidations += self
            .memo
            .entries_lru()
            .iter()
            .filter(|(key, _)| key.contains(&stale_tag))
            .count() as u64;
        self.epoch += 1;
    }

    /// Applies the staleness bound: refresh the Level-2 cluster
    /// summaries once churn exceeds the configured fraction of the live
    /// catalog.
    fn note_churn(&mut self) {
        self.churn_since_refresh += 1;
        let bound = self.config.cluster_refresh_fraction * self.levels.live_count() as f64;
        if self.churn_since_refresh as f64 > bound {
            Arc::make_mut(&mut self.levels).refresh_clusters();
            self.catalog.cluster_refreshes += 1;
            self.churn_since_refresh = 0;
        }
    }

    /// Seeds the embedding cache with the training pool so a cold trace
    /// starts against warm state (the "seeded" in seeded-LRU).
    fn prewarm_from_training_pool(&mut self) {
        let workload = Arc::clone(&self.workload);
        for query in &workload.train_queries {
            let key = self.embed_key(&normalize_query(&query.text));
            let embeddings = Arc::new(self.build_embeddings(query));
            self.embed_cache.seed(key, embeddings);
        }
    }

    /// The embedding-cache key: normalized query text qualified by the
    /// catalog epoch, so a live mutation strands every cached latent
    /// footprint computed against the old catalog without a flush.
    /// Normalized text cannot contain `|` (see [`normalize_query`]), so
    /// the epoch tag parses back unambiguously. A non-zero fleet tenant
    /// additionally prefixes `t{id}|`; tenant 0 keys stay byte-identical
    /// to the standalone engine's.
    pub(crate) fn embed_key(&self, normalized: &str) -> String {
        if self.tenant == 0 {
            format!("e{}|{}", self.epoch, normalized)
        } else {
            format!("t{}|e{}|{}", self.tenant, self.epoch, normalized)
        }
    }

    /// The memo key: normalized query text qualified by policy, level
    /// configuration and catalog epoch, so a reconfigured engine — or a
    /// mutated catalog — never reads stale entries. Like
    /// [`ServeEngine::embed_key`], a non-zero fleet tenant prefixes
    /// `t{id}|`.
    pub(crate) fn memo_key(&self, normalized: &str) -> String {
        let levels_tag = match self.config.policy {
            Policy::LessIsMore { config } => {
                format!("L12-t{:08x}", config.fallback_threshold.to_bits())
            }
            Policy::Gorilla { .. } => "L1".to_owned(),
            Policy::Default => "L3".to_owned(),
        };
        let base = format!(
            "{}|{}|e{}|{}",
            self.config.policy.label(),
            levels_tag,
            self.epoch,
            normalized
        );
        if self.tenant == 0 {
            base
        } else {
            format!("t{}|{}", self.tenant, base)
        }
    }

    /// Computes the latent footprint of one query (stage-2 work).
    ///
    /// Everything here derives from the *normalized* text — the cache
    /// key — never the raw text: two queries differing only in case or
    /// punctuation must alias to byte-identical embeddings, or a cache
    /// hit could return something a miss would not have computed.
    fn build_embeddings(&self, query: &Query) -> QueryEmbeddings {
        let embedder = self.levels.embedder();
        let normalized = normalize_query(&query.text);
        let query_embedding = embedder.embed(&normalized);
        match self.config.policy {
            Policy::LessIsMore { .. } => {
                let gold: Vec<String> = query
                    .steps
                    .iter()
                    .filter_map(|s| self.workload.registry.get_by_name(&s.tool))
                    .map(|t| t.description().to_owned())
                    .collect();
                let gold_refs: Vec<&str> = gold.iter().map(String::as_str).collect();
                let recommendations = recommend_descriptions(
                    &self.model,
                    self.config.quant,
                    &normalized,
                    &gold_refs,
                    stable_text_seed(&normalized),
                );
                let contexts = recommendations
                    .iter()
                    .map(|rec| embedder.embed_with_context(&normalized, rec))
                    .collect();
                QueryEmbeddings {
                    query: query_embedding,
                    recommendations,
                    contexts,
                }
            }
            _ => QueryEmbeddings {
                query: query_embedding,
                recommendations: Vec::new(),
                contexts: Vec::new(),
            },
        }
    }

    /// Arbitrates a selection from cached or fresh embeddings.
    fn arbitrate(&self, embeddings: &QueryEmbeddings) -> ToolSelection {
        match self.config.policy {
            Policy::LessIsMore { config } => {
                let controller = ToolController::new(&self.levels, config);
                controller.select_embedded(&embeddings.contexts)
            }
            Policy::Gorilla { k } => {
                let hits = self
                    .levels
                    .tool_index()
                    .search(embeddings.query.as_slice(), k);
                ToolSelection {
                    level: SearchLevel::Individual,
                    tool_indices: hits.iter().map(|h| h.id as usize).collect(),
                    level1_score: 0.0,
                    level2_score: 0.0,
                }
            }
            Policy::Default => ToolSelection {
                level: SearchLevel::Full,
                tool_indices: self.levels.full_level(),
                level1_score: 0.0,
                level2_score: 0.0,
            },
        }
    }

    /// Replays a session trace across `workers` worker threads
    /// (0 = available parallelism) and reports accuracy, latency
    /// percentiles and cache behaviour.
    ///
    /// Accuracy, latency and cache numbers are bit-identical for every
    /// worker count; only wall-clock throughput varies.
    ///
    /// This is a thin wrapper over the incremental streaming API: it
    /// opens a [`crate::ServeSession`], submits every request in
    /// canonical (session-major) order and finishes — so the batch and
    /// streamed paths share one code path and cannot diverge.
    ///
    /// # Errors
    ///
    /// Rejects traces generated for a different benchmark or referencing
    /// query indices outside the engine's pool.
    pub fn process_trace(
        &mut self,
        trace: &SessionTrace,
        workers: usize,
    ) -> Result<ServeReport, String> {
        if trace.benchmark != self.workload.name {
            return Err(format!(
                "trace was generated for {:?} but the engine serves {:?}",
                trace.benchmark, self.workload.name
            ));
        }
        let pool = self.workload.queries.len();
        if let Some(bad) = trace
            .sessions
            .iter()
            .flat_map(|s| s.query_indices.iter())
            .find(|q| **q >= pool)
        {
            return Err(format!("trace query index {bad} out of range (0..{pool})"));
        }
        trace.validate_arrivals()?;
        trace.validate_churn()?;

        let meta = crate::StreamMeta {
            trace_seed: trace.seed,
            zipf_s: trace.zipf_s,
            arrivals: trace.arrivals,
            sessions: Some(trace.sessions.len()),
        };
        let mut stream = self.begin_stream(meta, workers);
        let arrivals = trace.arrival_seconds();
        // Churn events apply at their recorded global request position:
        // the session drains in-flight work first (see
        // `ServeSession::register_tool`), so a mutation always lands on
        // a batch boundary — identical for every worker count.
        let mut churn = trace.churn.iter().peekable();
        let mut next = 0usize;
        for session in &trace.sessions {
            for &query_index in &session.query_indices {
                while let Some(event) = churn.next_if(|e| e.after_requests <= next) {
                    apply_churn_event(&mut stream, event)?;
                }
                stream.submit(crate::StreamRequest {
                    session: session.id,
                    query_index,
                    arrival_s: arrivals.as_ref().map(|a| a[next]),
                })?;
                next += 1;
            }
        }
        for event in churn {
            apply_churn_event(&mut stream, event)?;
        }
        Ok(stream.finish())
    }

    /// Stage 1, one request: resolve the session fast path and both
    /// caches in submission order; record the request's hit class plus a
    /// slot into the current batch's dense table of unique selection
    /// jobs.
    pub(crate) fn plan_request(
        &mut self,
        session_id: u64,
        query_index: usize,
        jobs: &mut Vec<SelectionJob>,
        slot_of: &mut HashMap<String, usize>,
    ) -> PlannedRequest {
        if let Policy::Default = self.config.policy {
            return PlannedRequest {
                query_index,
                source: SelectionSource::FullCatalog,
                cost: CostClass::Free,
            };
        }
        let query = &self.workload.queries[query_index];
        let normalized = normalize_query(&query.text);
        // The session fast path and the embedding cache key on the
        // epoch-qualified form: a catalog mutation strands both, so no
        // request is ever served a selection computed against a catalog
        // that no longer exists.
        let key = self.embed_key(&normalized);
        let state = self.sessions.entry(session_id).or_default();

        // Per-session warm controller: a session repeating its own
        // previous query bypasses the shared caches entirely.
        if state.last_key.as_deref() == Some(key.as_str()) {
            let source = state
                .last_selection
                .clone()
                .expect("fast path implies a resolved previous request");
            self.session_fast_hits += 1;
            return PlannedRequest {
                query_index,
                source,
                cost: CostClass::Free,
            };
        }

        // Every request conceptually embeds its query first, so the
        // embedding cache is consulted per request — *before* the memo.
        // A `Reserved` outcome means an earlier request in this batch
        // already scheduled the compute: by the time anything executes
        // (stage 4) the value exists, so it counts as a hit, exactly as
        // a sequential server would see it.
        let embed_lookup = self.embed_cache.lookup(&key);
        let memo_key = self.memo_key(&normalized);
        let ensure_job = |jobs: &mut Vec<SelectionJob>,
                          slot_of: &mut HashMap<String, usize>,
                          cached: Option<Arc<QueryEmbeddings>>,
                          embeddings_only: bool|
         -> usize {
            match slot_of.get(&normalized) {
                Some(&slot) => {
                    // A later requester that needs full cost accounting
                    // upgrades an embeddings-only refill (jobs run after
                    // all planning).
                    if !embeddings_only {
                        jobs[slot].embeddings_only = false;
                    }
                    slot
                }
                None => {
                    // Jobs are keyed by the *pure* normalized text: a
                    // job is a function of the query, and its simulated
                    // cost must not vary with the catalog epoch.
                    jobs.push(SelectionJob {
                        key: normalized.clone(),
                        query_index,
                        cached_embeddings: cached,
                        embeddings_only,
                    });
                    slot_of.insert(normalized.clone(), jobs.len() - 1);
                    jobs.len() - 1
                }
            }
        };
        let (source, cost) = match self.memo.lookup(&memo_key) {
            Lookup::Hit(selection) => {
                if matches!(embed_lookup, Lookup::Miss) {
                    // The embedding tier lost the entry while the memo
                    // kept its own; schedule a refill so the reserved
                    // slot gets a value (the request itself is served
                    // from the memo for free).
                    ensure_job(jobs, slot_of, None, true);
                }
                (SelectionSource::Ready(selection), CostClass::Free)
            }
            Lookup::Reserved => {
                // Reserved earlier in this batch: the slot exists (every
                // reservation schedules a job, and fills land at the end
                // of each batch, so a `Reserved` outcome can only come
                // from the current batch).
                let slot = slot_of[&normalized];
                (SelectionSource::Pending(slot), CostClass::Free)
            }
            Lookup::Miss => {
                let (cached, cost) = match &embed_lookup {
                    Lookup::Hit(e) => (Some(Arc::clone(e)), CostClass::KnnOnly),
                    // Pending embeddings: the slot's job computes them
                    // once; this request re-runs arbitration only.
                    Lookup::Reserved => (None, CostClass::KnnOnly),
                    Lookup::Miss => (None, CostClass::Cold),
                };
                let slot = ensure_job(jobs, slot_of, cached, false);
                (SelectionSource::Pending(slot), cost)
            }
        };
        let state = self.sessions.entry(session_id).or_default();
        state.last_key = Some(key);
        state.last_selection = Some(source.clone());
        PlannedRequest {
            query_index,
            source,
            cost,
        }
    }

    /// Stage 2: one unique selection job (pure in the normalized query).
    pub(crate) fn run_selection_job(
        &self,
        pipeline: &Pipeline<'_>,
        job: &SelectionJob,
    ) -> ComputedSelection {
        let query = &self.workload.queries[job.query_index];
        let embeddings = match &job.cached_embeddings {
            Some(cached) => Arc::clone(cached),
            None => Arc::new(self.build_embeddings(query)),
        };
        // Arbitration runs even for embeddings-only refills: if the memo
        // entry is evicted later in the trace, a subsequent request
        // resolves through this slot and needs the selection.
        let selection = Arc::new(self.arbitrate(&embeddings));

        let levels_probed = match self.config.policy {
            Policy::LessIsMore { .. } => 2.0,
            _ => 1.0,
        };
        let knn_seconds = self.config.knn_seconds_per_level * levels_probed;
        // Embeddings-only refills are never billed cold (every request on
        // this key is served Free from the memo or KnnOnly), so the
        // recommender cost simulation would be dead weight.
        let (rec_seconds, rec_joules) = match self.config.policy {
            Policy::LessIsMore { .. } if !job.embeddings_only => {
                // Billed on the normalized text, like everything else a
                // selection job derives, so the cost is a pure function
                // of the cache key.
                let cost = pipeline.recommender_cost(&job.key);
                (cost.seconds, cost.joules)
            }
            _ => (0.0, 0.0),
        };
        let texts_embedded = 1.0 + embeddings.contexts.len() as f64;
        let cold_seconds =
            rec_seconds + self.config.embed_seconds_per_text * texts_embedded + knn_seconds;
        ComputedSelection {
            embeddings,
            selection,
            cold_seconds,
            knn_seconds,
            cold_joules: rec_joules,
        }
    }

    /// Stage 4: execute one request's gold chain under its selection.
    pub(crate) fn execute_request(
        &self,
        pipeline: &Pipeline<'_>,
        request: &PlannedRequest,
        computed: &[ComputedSelection],
    ) -> RequestOutcome {
        let query = &self.workload.queries[request.query_index];
        let full_level;
        let (offered, level): (&[usize], Option<SearchLevel>) = match &request.source {
            SelectionSource::FullCatalog => {
                full_level = self.levels.full_level();
                (&full_level, None)
            }
            SelectionSource::Ready(selection) => (&selection.tool_indices, Some(selection.level)),
            SelectionSource::Pending(slot) => {
                let selection = &computed[*slot].selection;
                (&selection.tool_indices, Some(selection.level))
            }
        };
        let context = match level {
            None | Some(SearchLevel::Full) => DEFAULT_CONTEXT,
            _ => REDUCED_CONTEXT,
        };
        let result = pipeline.run_query_offered(query, offered, context);
        let (selection_seconds, selection_joules) = match (request.cost, &request.source) {
            (CostClass::Cold, SelectionSource::Pending(slot)) => {
                (computed[*slot].cold_seconds, computed[*slot].cold_joules)
            }
            (CostClass::KnnOnly, SelectionSource::Pending(slot)) => {
                (computed[*slot].knn_seconds, 0.0)
            }
            _ => (0.0, 0.0),
        };
        RequestOutcome {
            success: result.success,
            tool_correct: result.tool_correct,
            offered_tools: offered.len(),
            level,
            seconds: selection_seconds + result.cost.seconds,
            joules: selection_joules + result.cost.joules,
        }
    }

    /// The admission layer's degrade path: the Level-3 full catalog with
    /// zero selection overhead ([`ServiceLevel::Floor`] through the
    /// [`ServicePolicy`] actuation API). A degraded request pays the
    /// vanilla full-prompt execution but nothing for selection — the
    /// recommender, the `Ẽ` embeddings and the k-NN arbitration are all
    /// skipped.
    pub(crate) fn execute_degraded(
        &self,
        pipeline: &Pipeline<'_>,
        request: &PlannedRequest,
    ) -> RequestOutcome {
        let query = &self.workload.queries[request.query_index];
        let controller = ToolController::new(&self.levels, Default::default());
        let selection = controller.actuate(ServiceLevel::Floor, &[]);
        let result = pipeline.run_query_offered(query, &selection.tool_indices, DEFAULT_CONTEXT);
        RequestOutcome {
            success: result.success,
            tool_correct: result.tool_correct,
            offered_tools: selection.tool_indices.len(),
            level: None,
            seconds: result.cost.seconds,
            joules: result.cost.joules,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn aggregate(
        &self,
        scope: &ReportScope,
        workers: usize,
        outcomes: &[RequestOutcome],
        degraded_outcomes: Option<&[RequestOutcome]>,
        admission: &AdmissionOutcome,
        energy: EnergyAccounting<'_>,
        embed_before: CacheStats,
        memo_before: CacheStats,
        session_fast_before: u64,
        wall_seconds: f64,
    ) -> ServeReport {
        self.compose_report(
            scope,
            workers,
            outcomes,
            degraded_outcomes,
            admission,
            energy,
            self.embed_cache.stats().since(&embed_before),
            self.memo.stats().since(&memo_before),
            self.session_fast_hits - session_fast_before,
            self.boot.clone(),
            self.catalog_report(),
            wall_seconds,
        )
    }

    /// The live-catalog section of a report, read off this engine's
    /// counters.
    pub(crate) fn catalog_report(&self) -> CatalogReport {
        CatalogReport {
            epoch: self.epoch,
            registered: self.catalog.registered,
            retired: self.catalog.retired,
            tombstones: self.levels.tool_index().tombstones().len(),
            compactions: self.catalog.compactions,
            cluster_refreshes: self.catalog.cluster_refreshes,
            memo_invalidations: self.catalog.memo_invalidations,
        }
    }

    /// Builds a [`ServeReport`] from already-resolved cache/session
    /// deltas and boot/catalog sections. `aggregate` is a thin wrapper
    /// that reads those off this engine; a fleet calls this directly so
    /// the overall report can carry *summed* per-tenant deltas while the
    /// identity fields (benchmark, model, policy, seed, admission
    /// config) still come from a real engine through one code path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compose_report(
        &self,
        scope: &ReportScope,
        workers: usize,
        outcomes: &[RequestOutcome],
        degraded_outcomes: Option<&[RequestOutcome]>,
        admission: &AdmissionOutcome,
        energy: EnergyAccounting<'_>,
        embed_cache: CacheStats,
        selection_memo: CacheStats,
        session_fast_hits: u64,
        boot: BootReport,
        catalog: CatalogReport,
        wall_seconds: f64,
    ) -> ServeReport {
        // Resolve each request's *final* outcome through its admission
        // disposition: served → the outcome at the governor's chosen
        // rung (full fidelity unless the governor stepped it down to
        // Economy), degraded → the Level-3 alternative, shed → never
        // executed (None). Shed requests stay in every denominator:
        // shedding buys stability by paying accuracy, and the report
        // must show that price.
        let resolved: Vec<Option<&RequestOutcome>> = admission
            .dispositions
            .iter()
            .enumerate()
            .map(|(i, d)| match d {
                Disposition::Shed => None,
                Disposition::Degraded { .. } => {
                    Some(degraded_outcomes.map_or(&outcomes[i], |alt| &alt[i]))
                }
                Disposition::Served { .. } => match (energy.chosen.get(i), energy.eco_outcomes) {
                    (Some(ServiceLevel::Economy), Some(eco)) => Some(&eco[i]),
                    _ => Some(&outcomes[i]),
                },
            })
            .collect();
        let n = outcomes.len().max(1) as f64;
        let executed = || resolved.iter().flatten();
        // The energy ledger is index-aligned with the dispositions; shed
        // requests drew nothing and stay out of the per-request joule
        // percentiles (they still count in the gCO₂ denominator — grams
        // per *offered* request is the deployment-facing rate).
        let request_joules: Vec<f64> = resolved
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| energy.ledger.joules.get(i).copied().unwrap_or(0.0))
            .collect();
        let total_grams: f64 = energy.ledger.grams.iter().sum();
        let knobs = energy.knobs.unwrap_or(self.config.governor);
        let energy_report = EnergyReport {
            device: self.config.device.label().to_owned(),
            power_cap_w: knobs.power_cap_w,
            window_s: knobs.window_s,
            carbon_seed: knobs.carbon_seed,
            carbon_budget_g_per_h: knobs.carbon_budget_g_per_h,
            joules_per_request: LatencyStats::from_seconds(&request_joules),
            sustained_watts_max: energy.ledger.sustained_watts_max,
            gco2_per_1k_requests: total_grams / n * 1000.0,
            governor_transitions: energy.ledger.transitions,
        };
        let total_seconds: f64 = executed().map(|o| o.seconds).sum();
        let total_joules: f64 = executed().map(|o| o.joules).sum();
        let latencies: Vec<f64> = executed().map(|o| o.seconds).collect();
        let executed_n = latencies.len().max(1) as f64;
        let share =
            |level: SearchLevel| executed().filter(|o| o.level == Some(level)).count() as f64 / n;
        ServeReport {
            benchmark: self.workload.name.to_owned(),
            model: self.model.name.to_owned(),
            quant: self.config.quant,
            policy: self.config.policy.label(),
            engine_seed: self.config.seed,
            trace_seed: scope.trace_seed,
            zipf_s: scope.zipf_s,
            workers,
            sessions: scope.sessions,
            requests: outcomes.len(),
            unique_queries: scope.unique_queries,
            success_rate: executed().filter(|o| o.success).count() as f64 / n,
            tool_accuracy: executed().filter(|o| o.tool_correct).count() as f64 / n,
            avg_offered_tools: executed().map(|o| o.offered_tools as f64).sum::<f64>() / executed_n,
            level1_share: share(SearchLevel::Individual),
            level2_share: share(SearchLevel::Cluster),
            level3_share: executed()
                .filter(|o| o.level == Some(SearchLevel::Full) || o.level.is_none())
                .count() as f64
                / n,
            latency: LatencyStats::from_seconds(&latencies),
            sim_total_seconds: total_seconds,
            avg_power_w: if total_seconds > 0.0 {
                total_joules / total_seconds
            } else {
                0.0
            },
            energy: energy_report,
            embed_cache,
            selection_memo,
            session_fast_hits,
            boot,
            catalog,
            admission: AdmissionReport {
                arrivals: scope.arrivals.label(),
                queue_depth: self.config.admission.queue_depth,
                servers: self.config.admission.effective_servers(),
                shed_policy: self.config.admission.shed_policy.label().to_owned(),
                admitted: (admission.dispositions.len() as u64) - admission.shed,
                degraded: admission.degraded,
                shed: admission.shed,
                max_queue_depth: admission.max_queue_depth,
                queue_wait: LatencyStats::from_seconds(&admission.waits()),
            },
            wall_seconds,
            requests_per_second: if wall_seconds > 0.0 {
                outcomes.len() as f64 / wall_seconds
            } else {
                0.0
            },
        }
    }
}

/// Applies one trace churn event through the session's drain-boundary
/// mutation API, discarding the drained events (a trace replay reports
/// them through the final [`ServeReport`], not per event).
fn apply_churn_event(
    stream: &mut crate::ServeSession<'_>,
    event: &ChurnEvent,
) -> Result<(), String> {
    match &event.op {
        ChurnOp::Register(doc) => stream.register_tool(doc).map(|_| ()),
        ChurnOp::Retire(id) => stream.retire_tool(*id).map(|_| ()),
    }
}

/// Bytes of the sections a boot actually decoded — the basis of the
/// simulated decode cost. A levels boot from a checkpoint file never
/// touches the warm sections, so it never pays for them.
fn decoded_bytes(snapshot: &Snapshot) -> usize {
    snapshot
        .decoded_sections()
        .iter()
        .filter_map(|name| snapshot.section_len(name))
        .sum()
}

/// Normalizes a query into its cache key: lowercase, alphanumeric words,
/// single spaces. Punctuation and casing never change what a query means
/// to the selector, so they must not fragment the cache.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.extend(c.to_lowercase());
        } else {
            pending_space = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_collapses_case_and_punctuation() {
        assert_eq!(
            normalize_query("  What's the Weather, in Paris?! "),
            "what s the weather in paris"
        );
        assert_eq!(normalize_query("a  b\tc"), "a b c");
        assert_eq!(normalize_query("???"), "");
    }
}
