//! Live catalog mutation: the records, counters and epoch bookkeeping
//! behind [`crate::ServeEngine::register_tool`] and
//! [`crate::ServeEngine::retire_tool`].
//!
//! A running engine may grow or shrink its tool catalog without a
//! restart. Every successful mutation appends one [`CatalogRecord`] to
//! the engine's **catalog log** and bumps the engine's **catalog
//! epoch** — a monotonically increasing counter threaded through the
//! embedding-cache and selection-memo keys. Epoch-qualified keys are how
//! stale cache entries die *without a flush*: an entry computed against
//! an older catalog simply stops being addressable (its key names a past
//! epoch) and ages out of the LRU under normal pressure, while the
//! counters keep honest hit/miss accounting across the boundary.
//!
//! The log is also the replay artifact: a snapshot written after churn
//! carries the log as a `catalog_log` section, and a booting engine
//! replays it record-by-record to converge bit-identically with the
//! mutated live engine (see [`crate::snapshot`]).

use lim_json::Value;
use lim_tools::ToolDoc;

/// One catalog mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogOp {
    /// A tool joined the catalog (allocated the next dense index).
    Register(ToolDoc),
    /// The tool at this index left the catalog. Its index stays
    /// allocated forever — dense indices are never reused, so every log
    /// replay resolves ids identically.
    Retire(usize),
}

/// One entry of the catalog log.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogRecord {
    /// 1-based position in the log; strictly increasing.
    pub seq: u64,
    /// Catalog epoch after this mutation applied. Each mutation bumps
    /// the epoch by exactly one, so `epoch_after == seq` always — the
    /// redundancy is kept on the wire and *validated* at decode, turning
    /// a reordered or truncated log into a typed error instead of a
    /// silently different catalog.
    pub epoch_after: u64,
    /// What changed.
    pub op: CatalogOp,
}

/// Lifetime counters of the live-catalog machinery, reported in the
/// report-v3 `catalog` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogCounters {
    /// Tools registered since boot (or since the replayed log's origin).
    pub registered: u64,
    /// Tools retired.
    pub retired: u64,
    /// Tombstone compactions the Level-1 index performed.
    pub compactions: u64,
    /// Staleness-bounded Level-2 cluster refreshes.
    pub cluster_refreshes: u64,
    /// Selection-memo entries stranded by epoch bumps (they age out of
    /// the LRU; nothing is flushed).
    pub memo_invalidations: u64,
}

impl CatalogRecord {
    /// Serializes one log record. Deterministic: the same record always
    /// yields byte-identical JSON.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object([
            ("seq", Value::from(self.seq as i64)),
            ("epoch_after", Value::from(self.epoch_after as i64)),
        ]);
        match &self.op {
            CatalogOp::Register(tool) => {
                doc.insert("op", Value::from("register"));
                doc.insert("tool", tool.to_json());
            }
            CatalogOp::Retire(id) => {
                doc.insert("op", Value::from("retire"));
                doc.insert("id", Value::from(*id));
            }
        }
        doc
    }

    /// Decodes one log record.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field: missing or
    /// negative `seq`/`epoch_after`, unknown `op`, or an invalid
    /// embedded tool document.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let non_negative = |field: &str| -> Result<u64, String> {
            match doc.get(field).and_then(Value::as_i64) {
                Some(x) if x >= 0 => Ok(x as u64),
                Some(x) => Err(format!("catalog record {field} is negative ({x})")),
                None => Err(format!("catalog record missing {field}")),
            }
        };
        let seq = non_negative("seq")?;
        let epoch_after = non_negative("epoch_after")?;
        let op = match doc.get("op").and_then(Value::as_str) {
            Some("register") => {
                let tool = doc
                    .get("tool")
                    .ok_or("register record missing tool document")?;
                CatalogOp::Register(ToolDoc::from_json(tool).map_err(|e| e.to_string())?)
            }
            Some("retire") => {
                let id = match doc.get("id").and_then(Value::as_i64) {
                    Some(x) if x >= 0 => x as usize,
                    Some(x) => return Err(format!("retire record id is negative ({x})")),
                    None => return Err("retire record missing id".to_owned()),
                };
                CatalogOp::Retire(id)
            }
            Some(other) => return Err(format!("unknown catalog op {other:?}")),
            None => return Err("catalog record missing op".to_owned()),
        };
        Ok(Self {
            seq,
            epoch_after,
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lim_tools::ParamType;

    fn sample_doc() -> ToolDoc {
        ToolDoc::new("orbit_predict", "astro", "Predicts a satellite pass").with_param(
            "norad_id",
            ParamType::Integer,
            true,
            "catalog number",
        )
    }

    #[test]
    fn records_round_trip_through_json() {
        for record in [
            CatalogRecord {
                seq: 1,
                epoch_after: 1,
                op: CatalogOp::Register(sample_doc()),
            },
            CatalogRecord {
                seq: 2,
                epoch_after: 2,
                op: CatalogOp::Retire(17),
            },
        ] {
            let text = record.to_json().to_string();
            let back = CatalogRecord::from_json(&lim_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn malformed_records_are_rejected() {
        let ok = CatalogRecord {
            seq: 1,
            epoch_after: 1,
            op: CatalogOp::Retire(3),
        }
        .to_json();
        assert!(CatalogRecord::from_json(&ok).is_ok());
        for (field, value) in [
            ("seq", Value::from(-1)),
            ("epoch_after", Value::Null),
            ("op", Value::from("rename")),
            ("id", Value::from(-2)),
        ] {
            let mut broken = ok.clone();
            broken.insert(field, value);
            assert!(CatalogRecord::from_json(&broken).is_err(), "broke {field}");
        }
        let register = Value::object([
            ("seq", Value::from(1)),
            ("epoch_after", Value::from(1)),
            ("op", Value::from("register")),
        ]);
        assert!(CatalogRecord::from_json(&register)
            .unwrap_err()
            .contains("tool document"));
    }
}
