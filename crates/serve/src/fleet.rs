//! Fleet tenancy: N QoS-fair catalogs served by one engine process.
//!
//! A [`FleetEngine`] holds one [`ServeEngine`] per tenant, all sharing
//! one offline index build through copy-on-write `Arc`s (a tenant's
//! first live catalog mutation forks its own levels via
//! `Arc::make_mut`; cold tenants keep referencing the shared build
//! forever). Three fleet-wide mechanisms sit on top:
//!
//! * **Budget partition.** One shared embedding-cache budget and one
//!   memo budget are split across tenants by a deterministic
//!   weighted-by-traffic policy with a per-tenant floor
//!   ([`partition`]): every tenant is granted its floor first, and the
//!   spare is divided by cumulative submitted-request counts using
//!   largest-remainder rounding (ties to the lower tenant id). A hot
//!   tenant can grow its slice only from the spare — it can never push
//!   a cold tenant below the floor. Partitions are recomputed at fixed
//!   global submission counts ([`FleetConfig::rebalance_every`]), so
//!   the capacity history is a pure function of the submission order
//!   and the numbers stay bit-identical for every worker count and
//!   every drain chopping.
//! * **Two-level admission fairness.** All tenants feed one simulated
//!   executor pool through
//!   [`crate::admission::FleetAdmissionSim`]:
//!   round-robin across tenants with waiting work, then round-robin
//!   across sessions within the tenant. Queue depths and shed policies
//!   are enforced against each tenant's *own* backlog, so a flooding
//!   tenant sheds its own traffic instead of starving the others.
//! * **One aggregation path.** Per-tenant reports and the fleet-wide
//!   aggregate are both produced by
//!   `ServeEngine::compose_report` — the same code a standalone engine
//!   runs — so a one-tenant fleet is bit-identical to no fleet at all
//!   (the N=1 equivalence the tenancy tests pin down).
//!
//! # Examples
//!
//! ```
//! use lim_serve::{FleetConfig, FleetEngine, ServeConfig};
//! use lim_workloads::trace::{zipf_trace, TraceConfig};
//!
//! let workload = lim_workloads::bfcl(7, 40);
//! let trace = zipf_trace(
//!     &workload,
//!     &TraceConfig { tenants: 3, ..TraceConfig::default() },
//! );
//! let model = lim_llm::ModelProfile::by_name("llama3.1-8b").expect("model exists");
//! let config = FleetConfig::new(3, ServeConfig::default());
//! let mut fleet = FleetEngine::new(workload, model, config).expect("valid config");
//! let report = fleet.process_trace(&trace, 2).expect("trace matches workload");
//! assert_eq!(report.tenants.len(), 3);
//! assert_eq!(report.overall.requests, trace.requests());
//! ```

use std::sync::Arc;

use lim_core::{resolve_threads, Policy, SearchLevels, ServiceLevel, Snapshot, SnapshotError};
use lim_llm::ModelProfile;
use lim_tools::ToolDoc;
use lim_workloads::trace::{ArrivalProcess, ChurnOp, SessionTrace};
use lim_workloads::Workload;

use crate::admission::{Disposition, FleetAdmissionSim, ShedPolicy};
use crate::cache::CacheStats;
use crate::engine::{ReportScope, RequestOutcome, ServeConfig, ServeEngine};
use crate::governor::{EnergyAccounting, EnergyLedger, GovernorConfig, GovernorState};
use crate::report::{CatalogReport, FleetReport, TenantReport};
use crate::session::{RequestEvent, StreamMeta, StreamRequest, Ticket};

/// Fleet-wide tunables: the shared per-tenant base [`ServeConfig`] plus
/// the cache budgets the partition policy divides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of tenants (dense ids `0..tenants`).
    pub tenants: usize,
    /// Per-tenant engine configuration. Cache capacities in here are
    /// reinterpreted as the *fleet-wide budgets* by [`FleetConfig::new`];
    /// each tenant's actual capacity is its partition slice.
    pub base: ServeConfig,
    /// Total embedding-cache entries shared by all tenants.
    pub embed_budget: usize,
    /// Total selection-memo entries shared by all tenants.
    pub memo_budget: usize,
    /// Guaranteed minimum embedding-cache entries per tenant. Clamped
    /// into `1..=embed_budget / tenants` at partition time.
    pub embed_floor: usize,
    /// Guaranteed minimum selection-memo entries per tenant.
    pub memo_floor: usize,
    /// Recompute the budget partition every this many globally submitted
    /// requests (0 disables rebalancing; the boot-time equal split then
    /// holds forever).
    pub rebalance_every: u64,
}

impl FleetConfig {
    /// A fleet of `tenants` engines over `base`: the base cache
    /// capacities become the fleet-wide budgets, floors default to a
    /// quarter of an equal share, and the partition is recomputed every
    /// 64 requests.
    pub fn new(tenants: usize, base: ServeConfig) -> Self {
        Self {
            tenants,
            base,
            embed_budget: base.embed_cache_capacity,
            memo_budget: base.memo_capacity,
            embed_floor: (base.embed_cache_capacity / (4 * tenants.max(1))).max(1),
            memo_floor: (base.memo_capacity / (4 * tenants.max(1))).max(1),
            rebalance_every: 64,
        }
    }

    /// Checks the budgets can cover every tenant's minimum slice.
    ///
    /// # Errors
    ///
    /// A human-readable message when `tenants` is zero or a budget
    /// cannot grant every tenant at least one entry.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("fleet needs at least one tenant".to_owned());
        }
        if self.embed_budget < self.tenants {
            return Err(format!(
                "embed budget {} cannot grant {} tenants one entry each",
                self.embed_budget, self.tenants
            ));
        }
        if self.memo_budget < self.tenants {
            return Err(format!(
                "memo budget {} cannot grant {} tenants one entry each",
                self.memo_budget, self.tenants
            ));
        }
        Ok(())
    }

    /// The effective embedding-cache floor after clamping: at least one
    /// entry, at most an equal share of the budget.
    pub fn effective_embed_floor(&self) -> usize {
        effective_floor(self.embed_budget, self.embed_floor, self.tenants)
    }

    /// The effective selection-memo floor after clamping.
    pub fn effective_memo_floor(&self) -> usize {
        effective_floor(self.memo_budget, self.memo_floor, self.tenants)
    }
}

fn effective_floor(budget: usize, floor: usize, tenants: usize) -> usize {
    floor.clamp(1, (budget / tenants.max(1)).max(1))
}

/// Splits `budget` cache entries across tenants: every tenant gets the
/// (clamped) floor, and the spare is divided proportionally to
/// `weights` by largest-remainder rounding, ties broken toward the
/// lower tenant id. All-zero weights (a fleet that has served nothing)
/// split the spare equally. The result always sums to exactly `budget`
/// and every slice is at least the effective floor — the invariant the
/// hot/cold isolation test leans on.
pub fn partition(budget: usize, floor: usize, weights: &[u64]) -> Vec<usize> {
    let n = weights.len();
    assert!(n > 0, "partition over zero tenants");
    assert!(budget >= n, "budget {budget} below one entry per tenant");
    let floor = effective_floor(budget, floor, n);
    let spare = budget - n * floor;
    let uniform = vec![1u64; n];
    let weights = if weights.iter().all(|w| *w == 0) {
        &uniform
    } else {
        weights
    };
    let total: u128 = weights.iter().map(|w| u128::from(*w)).sum();
    let mut slices: Vec<usize> = Vec::with_capacity(n);
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(n);
    let mut granted = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let exact = u128::from(*w) * spare as u128;
        let share = (exact / total) as usize;
        granted += share;
        slices.push(floor + share);
        remainders.push((exact % total, i));
    }
    // Leftover units go to the largest fractional remainders; the tie
    // break (lower tenant id first) keeps the split fully deterministic.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, i) in remainders.iter().take(spare - granted) {
        slices[*i] += 1;
    }
    debug_assert_eq!(slices.iter().sum::<usize>(), budget);
    slices
}

/// [`partition`] over a continuous budget (watts, g CO₂/h): quantized
/// to integer milli-units so the split is exact, with the same
/// quarter-of-an-equal-share floor the cache budgets default to.
fn partition_budget(total: f64, tenants: usize, weights: &[u64]) -> Vec<f64> {
    let tenants = tenants.max(1);
    let total_m = ((total * 1000.0).round() as usize).max(tenants);
    let floor_m = (total_m / (4 * tenants)).max(1);
    partition(total_m, floor_m, weights)
        .into_iter()
        .map(|m| m as f64 / 1000.0)
        .collect()
}

/// Why a [`FleetSession::submit`] was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetSubmitError {
    /// The request named a tenant the fleet does not serve. The stream
    /// survives: wire front-ends answer this with a typed `error` frame
    /// and keep reading.
    UnknownTenant {
        /// The tenant id the request carried.
        tenant: u64,
        /// How many tenants the fleet serves (`0..tenants` are valid).
        tenants: usize,
    },
    /// Any other rejection (bad query index, arrival-timestamp
    /// violations …), forwarded from the per-tenant validation.
    Other(String),
}

impl std::fmt::Display for FleetSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (fleet serves 0..{tenants})")
            }
            Self::Other(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for FleetSubmitError {}

/// A multi-tenant serving engine: one [`ServeEngine`] per tenant over a
/// shared index build, a shared cache budget, and two-level admission
/// fairness. See the [module docs](self) for the mechanism summary.
#[derive(Debug)]
pub struct FleetEngine {
    pub(crate) engines: Vec<ServeEngine>,
    pub(crate) config: FleetConfig,
    /// Lifetime submitted-request count per tenant — the partition
    /// weights.
    pub(crate) traffic: Vec<u64>,
    /// Lifetime globally submitted requests (drives the rebalance
    /// cadence).
    pub(crate) total_submitted: u64,
    /// Fleet-wide passive sustained-watts estimator: observes every
    /// tenant's admitted energy (never decides — actuation is
    /// per-tenant) so the overall report can state what the whole box
    /// drew. Checkpointed with the fleet section.
    pub(crate) estimator: GovernorState,
}

impl FleetEngine {
    /// Builds the offline search levels **once** and starts one engine
    /// per tenant over the shared build, each with its equal-split
    /// partition slice of the cache budgets.
    ///
    /// # Errors
    ///
    /// A human-readable message when the config fails
    /// [`FleetConfig::validate`].
    pub fn new(
        workload: Workload,
        model: ModelProfile,
        config: FleetConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let levels = Arc::new(SearchLevels::build(&workload));
        let workload = Arc::new(workload);
        Self::with_shared(workload, levels, model, config)
    }

    /// Starts a fleet over already-shared workload/levels Arcs (what the
    /// checkpoint restore path and [`FleetEngine::new`] both go
    /// through). Public so front-ends that already hold built levels —
    /// a snapshot boot, a custom index backend — can share one
    /// copy-on-write `SearchLevels` across every tenant instead of
    /// rebuilding it `tenants` times.
    ///
    /// # Errors
    ///
    /// Returns a description of an invalid [`FleetConfig`].
    pub fn with_shared(
        workload: Arc<Workload>,
        levels: Arc<SearchLevels>,
        model: ModelProfile,
        config: FleetConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let traffic = vec![0u64; config.tenants];
        let embed = partition(config.embed_budget, config.embed_floor, &traffic);
        let memo = partition(config.memo_budget, config.memo_floor, &traffic);
        let engines = (0..config.tenants)
            .map(|tenant| {
                let mut tenant_config = config.base;
                tenant_config.embed_cache_capacity = embed[tenant];
                tenant_config.memo_capacity = memo[tenant];
                ServeEngine::for_tenant(
                    Arc::clone(&workload),
                    Arc::clone(&levels),
                    model.clone(),
                    tenant_config,
                    tenant as u64,
                )
            })
            .collect();
        let mut fleet = Self {
            engines,
            config,
            traffic,
            total_submitted: 0,
            estimator: GovernorState::new(),
        };
        fleet.apportion_governor();
        Ok(fleet)
    }

    /// Number of tenants this fleet serves.
    pub fn tenants(&self) -> usize {
        self.engines.len()
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// One tenant's engine, read-only — how tests and metrics exporters
    /// inspect per-tenant cache state.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range.
    pub fn tenant_engine(&self, tenant: usize) -> &ServeEngine {
        &self.engines[tenant]
    }

    /// Current embedding-cache capacities per tenant (the latest
    /// partition decision).
    pub fn embed_capacities(&self) -> Vec<usize> {
        self.engines
            .iter()
            .map(|e| e.config.embed_cache_capacity)
            .collect()
    }

    /// Current selection-memo capacities per tenant.
    pub fn memo_capacities(&self) -> Vec<usize> {
        self.engines
            .iter()
            .map(|e| e.config.memo_capacity)
            .collect()
    }

    /// Recomputes the budget partition from the cumulative traffic
    /// weights and resizes every tenant's caches to its new slice.
    /// Called at fixed global submission counts, never mid-batch.
    pub(crate) fn rebalance(&mut self) {
        let embed = partition(
            self.config.embed_budget,
            self.config.embed_floor,
            &self.traffic,
        );
        let memo = partition(
            self.config.memo_budget,
            self.config.memo_floor,
            &self.traffic,
        );
        for (tenant, engine) in self.engines.iter_mut().enumerate() {
            engine.resize_caches(embed[tenant], memo[tenant]);
        }
        self.apportion_governor();
    }

    /// Splits the fleet-wide power cap (and carbon budget) across
    /// tenants through the same floor + largest-remainder machinery as
    /// the cache budgets, weighted by cumulative traffic, in integer
    /// milliwatts (milligrams) so the slices are exact and
    /// deterministic. No-op when the base governor has no cap/budget.
    fn apportion_governor(&mut self) {
        let base = self.config.base.governor.normalized();
        if base.power_capped() {
            let caps = partition_budget(base.power_cap_w, self.config.tenants, &self.traffic);
            for (tenant, engine) in self.engines.iter_mut().enumerate() {
                engine.config.governor.power_cap_w = caps[tenant];
            }
        }
        if base.carbon_capped() {
            let budgets = partition_budget(
                base.carbon_budget_g_per_h,
                self.config.tenants,
                &self.traffic,
            );
            for (tenant, engine) in self.engines.iter_mut().enumerate() {
                engine.config.governor.carbon_budget_g_per_h = budgets[tenant];
            }
        }
    }

    /// Current per-tenant power-cap slices in watts (all `0.0` when the
    /// fleet is uncapped).
    pub fn power_caps_w(&self) -> Vec<f64> {
        self.engines
            .iter()
            .map(|e| e.config.governor.power_cap_w)
            .collect()
    }

    /// Registers a tool on one tenant's live catalog (the tenant's
    /// levels fork from the shared build on first mutation). Prefer
    /// [`FleetSession::register_tool`] mid-stream.
    ///
    /// # Errors
    ///
    /// Unknown tenant, or the per-engine rejection (invalid document,
    /// duplicate name).
    pub fn register_tool(&mut self, tenant: u64, doc: &ToolDoc) -> Result<usize, String> {
        let engine = self.engine_mut(tenant)?;
        engine.register_tool(doc)
    }

    /// Retires a tool from one tenant's live catalog.
    ///
    /// # Errors
    ///
    /// Unknown tenant, or the per-engine rejection (index out of range
    /// or already retired).
    pub fn retire_tool(&mut self, tenant: u64, index: usize) -> Result<(), String> {
        let engine = self.engine_mut(tenant)?;
        engine.retire_tool(index)
    }

    fn engine_mut(&mut self, tenant: u64) -> Result<&mut ServeEngine, String> {
        let tenants = self.engines.len();
        usize::try_from(tenant)
            .ok()
            .and_then(|t| self.engines.get_mut(t))
            .ok_or_else(|| format!("unknown tenant {tenant} (fleet serves 0..{tenants})"))
    }

    /// Serializes the whole fleet — tenancy state, every tenant's
    /// levels, warm caches in deterministic LRU order, sessions and
    /// catalog log — as one `lim/snapshot-v1` checkpoint. Encoding the
    /// same fleet twice yields byte-identical output. A single-engine
    /// boot handed a fleet file fails safe (its `fleet` and `t{i}.*`
    /// sections are unknown to [`ServeEngine::from_checkpoint`]).
    pub fn checkpoint(&self) -> Vec<u8> {
        crate::snapshot::write_fleet_checkpoint(self)
    }

    /// Boots a whole fleet from a checkpoint written by
    /// [`FleetEngine::checkpoint`], skipping the level build and the
    /// cold-cache ramp for every tenant: replaying the remainder of a
    /// trace on the restored fleet is bit-identical to never having
    /// restarted, and the first replayed requests hit the warm caches
    /// with zero misses.
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`]s: a missing or malformed `tenants`
    /// header is [`SnapshotError::Header`]; sections for tenants the
    /// header does not declare (`t9.engine` in a 3-tenant file) are
    /// [`SnapshotError::UnknownSection`]; duplicate sections are
    /// rejected by the container parser; configuration disagreements
    /// (tenant count, budgets, floors, cadence, model, quant, policy,
    /// seed) are [`SnapshotError::Mismatch`].
    pub fn from_checkpoint(
        snapshot: &Snapshot,
        workload: Workload,
        model: ModelProfile,
        config: FleetConfig,
    ) -> Result<Self, SnapshotError> {
        crate::snapshot::restore_fleet(snapshot, workload, model, config)
    }

    /// Opens an incremental multi-tenant serving session (the fleet
    /// shape of [`ServeEngine::begin_stream`]).
    pub fn begin_stream(&mut self, meta: StreamMeta, workers: usize) -> FleetSession<'_> {
        let workers = resolve_threads(workers);
        let open_loop = meta.arrivals != ArrivalProcess::BackToBack;
        let base = self.config.base;
        let needs_degraded = base.admission.enabled()
            && base.admission.shed_policy == ShedPolicy::Degrade
            && open_loop
            && !matches!(base.policy, Policy::Default);
        let base_governor = base.governor.normalized();
        let needs_eco = base_governor.active() && open_loop;
        let idle_power_w = base.device.profile().idle_power_w();
        let sim = FleetAdmissionSim::new(
            vec![base.admission; self.engines.len()],
            base.admission.effective_servers(),
            open_loop,
        );
        let tenants = self.engines.len();
        let embed_before = self.engines.iter().map(|e| e.embed_cache.stats()).collect();
        let memo_before = self.engines.iter().map(|e| e.memo.stats()).collect();
        let session_fast_before = self.engines.iter().map(|e| e.session_fast_hits).collect();
        FleetSession {
            fleet: self,
            workers,
            meta,
            open_loop,
            needs_degraded,
            needs_eco,
            base_governor,
            idle_power_w,
            started: std::time::Instant::now(),
            embed_before,
            memo_before,
            session_fast_before,
            sim,
            pending: Vec::new(),
            stashed_events: Vec::new(),
            tenant_of: Vec::new(),
            outcomes: Vec::new(),
            degraded_outcomes: Vec::new(),
            eco_outcomes: Vec::new(),
            chosen: Vec::new(),
            arrivals: Vec::new(),
            energy: EnergyLedger::default(),
            tenant_transitions: vec![0; tenants],
            tenant_watts_max: vec![0.0; tenants],
            queries: vec![Vec::new(); tenants],
            all_queries: Vec::new(),
            session_runs: vec![0; tenants],
            last_session: vec![None; tenants],
            global_session_runs: 0,
            global_last_session: None,
            last_arrival: 0.0,
        }
    }

    /// Replays a multi-tenant session trace and reports the fleet-wide
    /// aggregate plus per-tenant breakdowns. Thin wrapper over the
    /// incremental [`FleetSession`] — one code path, exactly like
    /// [`ServeEngine::process_trace`].
    ///
    /// # Errors
    ///
    /// Rejects traces for a different benchmark, out-of-pool query
    /// indices, incoherent arrival/churn/tenant metadata, and traces
    /// naming more tenants than the fleet serves.
    pub fn process_trace(
        &mut self,
        trace: &SessionTrace,
        workers: usize,
    ) -> Result<FleetReport, String> {
        let workload = self.engines[0].workload.clone();
        if trace.benchmark != workload.name {
            return Err(format!(
                "trace was generated for {:?} but the fleet serves {:?}",
                trace.benchmark, workload.name
            ));
        }
        let pool = workload.queries.len();
        if let Some(bad) = trace
            .sessions
            .iter()
            .flat_map(|s| s.query_indices.iter())
            .find(|q| **q >= pool)
        {
            return Err(format!("trace query index {bad} out of range (0..{pool})"));
        }
        trace.validate_arrivals()?;
        trace.validate_churn()?;
        trace.validate_tenants()?;
        if trace.tenants > self.engines.len() {
            return Err(format!(
                "trace names {} tenants but the fleet serves {}",
                trace.tenants,
                self.engines.len()
            ));
        }

        let meta = StreamMeta {
            trace_seed: trace.seed,
            zipf_s: trace.zipf_s,
            arrivals: trace.arrivals,
            sessions: Some(trace.sessions.len()),
        };
        let mut stream = self.begin_stream(meta, workers);
        let arrivals = trace.arrival_seconds();
        let mut churn = trace.churn.iter().peekable();
        let mut next = 0usize;
        for session in &trace.sessions {
            for &query_index in &session.query_indices {
                while let Some(event) = churn.next_if(|e| e.after_requests <= next) {
                    apply_fleet_churn_event(&mut stream, event.tenant, &event.op)?;
                }
                stream
                    .submit(
                        session.tenant,
                        StreamRequest {
                            session: session.id,
                            query_index,
                            arrival_s: arrivals.as_ref().map(|a| a[next]),
                        },
                    )
                    .map_err(|e| e.to_string())?;
                next += 1;
            }
        }
        for event in churn {
            apply_fleet_churn_event(&mut stream, event.tenant, &event.op)?;
        }
        Ok(stream.finish())
    }
}

fn apply_fleet_churn_event(
    stream: &mut FleetSession<'_>,
    tenant: u64,
    op: &ChurnOp,
) -> Result<(), String> {
    match op {
        ChurnOp::Register(doc) => stream.register_tool(tenant, doc).map(|_| ()),
        ChurnOp::Retire(id) => stream.retire_tool(tenant, *id).map(|_| ()),
    }
}

/// An in-flight incremental fleet session: the multi-tenant shape of
/// [`crate::ServeSession`]. Requests carry a tenant id; drains route
/// each tenant's slice of the batch through that tenant's engine
/// (preserving global submission order within the tenant) and feed the
/// two-level admission simulation one offer per request in global
/// submission order — so every number is a pure function of the
/// submission sequence, chopped however the front-end likes.
pub struct FleetSession<'e> {
    fleet: &'e mut FleetEngine,
    workers: usize,
    meta: StreamMeta,
    open_loop: bool,
    needs_degraded: bool,
    /// Whether any tenant's governor can actuate on this stream (active
    /// base config on an open-loop stream).
    needs_eco: bool,
    /// The normalized fleet-wide governor knobs (what the passive
    /// fleet estimator windows over; tenants decide with their own
    /// apportioned slices).
    base_governor: GovernorConfig,
    /// Idle draw of the shared device profile.
    idle_power_w: f64,
    started: std::time::Instant,
    embed_before: Vec<CacheStats>,
    memo_before: Vec<CacheStats>,
    session_fast_before: Vec<u64>,
    sim: FleetAdmissionSim,
    /// Submitted but not yet drained, global submission order.
    pending: Vec<(usize, StreamRequest)>,
    /// Events resolved by a forced rebalance drain, owed to the next
    /// explicit [`FleetSession::drain`] call.
    stashed_events: Vec<RequestEvent>,
    /// Tenant of every submitted request, global submission order.
    tenant_of: Vec<usize>,
    /// Full-quality outcome per drained request, global submission
    /// order.
    outcomes: Vec<RequestOutcome>,
    degraded_outcomes: Vec<RequestOutcome>,
    /// Economy-rung alternatives, global submission order (empty when no
    /// governor can actuate).
    eco_outcomes: Vec<RequestOutcome>,
    /// The owning tenant's governor rung per request, global submission
    /// order.
    chosen: Vec<ServiceLevel>,
    /// Arrival instant per request, global submission order.
    arrivals: Vec<f64>,
    /// Fleet-wide energy ledger: per-request joules/grams plus the
    /// fleet estimator's sustained-watts max.
    energy: EnergyLedger,
    /// Governor rung transitions per tenant.
    tenant_transitions: Vec<u64>,
    /// Per-tenant sustained-watts max (each tenant's governor windows
    /// its own admitted energy).
    tenant_watts_max: Vec<f64>,
    /// Query indices per tenant (for per-tenant unique counts).
    queries: Vec<Vec<usize>>,
    /// Query indices globally (for the overall unique count).
    all_queries: Vec<usize>,
    /// Runs of consecutive session ids per tenant.
    session_runs: Vec<usize>,
    last_session: Vec<Option<u64>>,
    global_session_runs: usize,
    global_last_session: Option<u64>,
    last_arrival: f64,
}

impl FleetSession<'_> {
    /// Accepts one request for `tenant` into the current batch. Cheap —
    /// no engine work happens until [`FleetSession::drain`] — except at
    /// a rebalance boundary, where the pending batch is drained first so
    /// the capacity change lands between requests, never inside a plan.
    ///
    /// # Errors
    ///
    /// [`FleetSubmitError::UnknownTenant`] for a tenant id outside
    /// `0..tenants` (the session survives and keeps accepting), or
    /// [`FleetSubmitError::Other`] for the single-engine validation
    /// failures (bad query index, arrival-timestamp violations).
    pub fn submit(
        &mut self,
        tenant: u64,
        request: StreamRequest,
    ) -> Result<Ticket, FleetSubmitError> {
        let tenants = self.fleet.engines.len();
        let Some(tenant) = usize::try_from(tenant).ok().filter(|t| *t < tenants) else {
            return Err(FleetSubmitError::UnknownTenant { tenant, tenants });
        };
        let pool = self.fleet.engines[tenant].workload.queries.len();
        if request.query_index >= pool {
            return Err(FleetSubmitError::Other(format!(
                "request query index {} out of range (0..{pool})",
                request.query_index
            )));
        }
        match (self.open_loop, request.arrival_s) {
            (true, None) => {
                return Err(FleetSubmitError::Other(format!(
                    "open-loop stream ({}) requires an arrival timestamp per request",
                    self.meta.arrivals.label()
                )));
            }
            (false, Some(_)) => {
                return Err(FleetSubmitError::Other(
                    "closed-loop (back-to-back) stream carries no arrival timestamps".to_owned(),
                ));
            }
            (true, Some(t)) => {
                if t < self.last_arrival {
                    return Err(FleetSubmitError::Other(format!(
                        "arrival {t}s decreases below {}s; arrivals must be nondecreasing",
                        self.last_arrival
                    )));
                }
                self.last_arrival = t;
            }
            (false, None) => {}
        }

        // Rebalance boundary: drain whatever is pending under the old
        // capacities, then recompute the partition. The boundary is a
        // fixed global submission count, so the capacity history cannot
        // depend on how the front-end chopped its drains.
        let every = self.fleet.config.rebalance_every;
        if every > 0 && self.fleet.total_submitted > 0 && self.fleet.total_submitted % every == 0 {
            let events = self.drain_pending();
            self.stashed_events.extend(events);
            self.fleet.rebalance();
        }

        if self.last_session[tenant] != Some(request.session) {
            self.last_session[tenant] = Some(request.session);
            self.session_runs[tenant] += 1;
        }
        if self.global_last_session != Some(request.session) {
            self.global_last_session = Some(request.session);
            self.global_session_runs += 1;
        }
        self.queries[tenant].push(request.query_index);
        self.all_queries.push(request.query_index);
        self.tenant_of.push(tenant);
        self.pending.push((tenant, request));
        self.fleet.traffic[tenant] += 1;
        self.fleet.total_submitted += 1;
        Ok(Ticket(self.all_queries.len() - 1))
    }

    /// Requests submitted so far (drained or not).
    pub fn submitted(&self) -> usize {
        self.all_queries.len()
    }

    /// Runs the pending batch through each tenant's engine and the
    /// two-level admission queue; returns the requests whose disposition
    /// resolved (including any owed by a forced rebalance drain).
    pub fn drain(&mut self) -> Vec<RequestEvent> {
        let mut events = std::mem::take(&mut self.stashed_events);
        events.extend(self.drain_pending());
        events
    }

    fn drain_pending(&mut self) -> Vec<RequestEvent> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch = std::mem::take(&mut self.pending);
        let base = self.outcomes.len();

        // Route each tenant's slice of the batch through its engine, in
        // global submission order within the tenant, then scatter the
        // outcomes back to global positions.
        self.outcomes
            .extend((0..batch.len()).map(|_| RequestOutcome::placeholder()));
        if self.needs_degraded {
            self.degraded_outcomes
                .extend((0..batch.len()).map(|_| RequestOutcome::placeholder()));
        }
        if self.needs_eco {
            self.eco_outcomes
                .extend((0..batch.len()).map(|_| RequestOutcome::placeholder()));
        }
        for tenant in 0..self.fleet.engines.len() {
            let positions: Vec<usize> = batch
                .iter()
                .enumerate()
                .filter(|(_, (t, _))| *t == tenant)
                .map(|(i, _)| i)
                .collect();
            if positions.is_empty() {
                continue;
            }
            let slice: Vec<StreamRequest> = positions.iter().map(|i| batch[*i].1).collect();
            let out = self.fleet.engines[tenant].drain_batch(
                &slice,
                self.workers,
                self.needs_degraded,
                self.needs_eco,
            );
            for (k, &i) in positions.iter().enumerate() {
                self.outcomes[base + i] = out.outcomes[k].clone();
                if self.needs_degraded {
                    self.degraded_outcomes[base + i] = out.degraded[k].clone();
                }
                if self.needs_eco {
                    self.eco_outcomes[base + i] = out.eco[k].clone();
                }
            }
        }

        // Stage 5: one admission offer per request in global submission
        // order, exactly like the single-engine session. The owning
        // tenant's governor decides the service rung *before* the offer
        // (on its apportioned cap slice), then both the tenant governor
        // and the passive fleet-wide estimator observe the admitted
        // energy *after* the offer resolves.
        let mut events = Vec::new();
        for (i, (tenant, request)) in batch.iter().enumerate() {
            let index = base + i;
            let arrival = request.arrival_s.unwrap_or(0.0);
            self.arrivals.push(arrival);
            let chosen = if self.needs_eco {
                let engine = &mut self.fleet.engines[*tenant];
                let config = engine.config.governor;
                let before = engine.governor.level();
                let served = engine.governor.decide(
                    &config,
                    &engine.carbon,
                    arrival,
                    self.outcomes[index].joules,
                    self.eco_outcomes[index].joules,
                );
                // Transitions count rung moves of the tenant's state
                // machine, not per-request served-variant flips.
                if engine.governor.level() != before {
                    self.tenant_transitions[*tenant] += 1;
                }
                served
            } else {
                ServiceLevel::Full
            };
            self.chosen.push(chosen);
            let service_s = match chosen {
                ServiceLevel::Economy => self.eco_outcomes[index].seconds,
                _ => self.outcomes[index].seconds,
            };
            let resolved = self.sim.offer(
                *tenant,
                request.session,
                arrival,
                service_s,
                self.needs_degraded
                    .then(|| self.degraded_outcomes[index].seconds),
            );
            let shed_now = resolved
                .iter()
                .any(|(idx, d)| *idx == index && matches!(d, Disposition::Shed));
            let admitted_joules = if shed_now {
                0.0
            } else if self.sim.degraded(index) {
                self.floor_joules(index)
            } else {
                self.variant_joules(index)
            };
            {
                let engine = &mut self.fleet.engines[*tenant];
                let config = engine.config.governor;
                let watts = engine.governor.observe(&config, arrival, admitted_joules);
                if watts > self.tenant_watts_max[*tenant] {
                    self.tenant_watts_max[*tenant] = watts;
                }
            }
            let fleet_watts =
                self.fleet
                    .estimator
                    .observe(&self.base_governor, arrival, admitted_joules);
            if fleet_watts > self.energy.sustained_watts_max {
                self.energy.sustained_watts_max = fleet_watts;
            }
            for (idx, disposition) in resolved {
                let event = self.event(idx, disposition);
                events.push(event);
            }
        }
        events
    }

    /// Execution joules at the rung the governor chose for `index`.
    fn variant_joules(&self, index: usize) -> f64 {
        match self.chosen.get(index) {
            Some(ServiceLevel::Economy) => self.eco_outcomes[index].joules,
            _ => self.outcomes[index].joules,
        }
    }

    /// Execution joules at the admission floor (degraded Level-3 pass
    /// when it ran, full-quality otherwise — mirroring the service-time
    /// fallback in [`Self::event`]).
    fn floor_joules(&self, index: usize) -> f64 {
        if self.needs_degraded {
            self.degraded_outcomes[index].joules
        } else {
            self.outcomes[index].joules
        }
    }

    /// Registers a tool on `tenant`'s live catalog mid-stream, draining
    /// the pending batch first so the mutation lands on a batch boundary
    /// (see [`crate::ServeSession::register_tool`] for the semantics).
    /// Returns the new tool's catalog index plus the resolved events.
    ///
    /// # Errors
    ///
    /// Unknown tenant or the per-engine rejection; the stream is
    /// unaffected on error (the forced drain still happened).
    pub fn register_tool(
        &mut self,
        tenant: u64,
        doc: &ToolDoc,
    ) -> Result<(usize, Vec<RequestEvent>), String> {
        let events = self.drain();
        let index = self.fleet.register_tool(tenant, doc)?;
        Ok((index, events))
    }

    /// Retires a tool from `tenant`'s live catalog mid-stream, draining
    /// the pending batch first. Returns the resolved events.
    ///
    /// # Errors
    ///
    /// Unknown tenant or the per-engine rejection; the stream is
    /// unaffected on error (the forced drain still happened).
    pub fn retire_tool(&mut self, tenant: u64, index: usize) -> Result<Vec<RequestEvent>, String> {
        let events = self.drain();
        self.fleet.retire_tool(tenant, index)?;
        Ok(events)
    }

    /// One tenant's current catalog epoch.
    ///
    /// # Errors
    ///
    /// Unknown tenant.
    pub fn epoch(&self, tenant: u64) -> Result<u64, String> {
        let tenants = self.fleet.engines.len();
        usize::try_from(tenant)
            .ok()
            .and_then(|t| self.fleet.engines.get(t))
            .map(ServeEngine::epoch)
            .ok_or_else(|| format!("unknown tenant {tenant} (fleet serves 0..{tenants})"))
    }

    /// Drains the pending batch, works the admission queue dry and
    /// aggregates the fleet report — exactly what
    /// [`FleetEngine::process_trace`] returns for the same stream.
    pub fn finish(self) -> FleetReport {
        self.finish_with_events().0
    }

    /// [`FleetSession::finish`], also returning the tail events resolved
    /// by the final queue drain.
    pub fn finish_with_events(mut self) -> (FleetReport, Vec<RequestEvent>) {
        let mut events = self.drain();
        let tail = self.sim.drain();
        for (idx, disposition) in tail {
            events.push(self.event(idx, disposition));
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let outcome = std::mem::replace(
            &mut self.sim,
            FleetAdmissionSim::new(
                vec![self.fleet.config.base.admission; self.fleet.engines.len()],
                self.fleet.config.base.admission.effective_servers(),
                false,
            ),
        )
        .into_outcome();

        let unique = |queries: &[usize]| {
            let mut q = queries.to_vec();
            q.sort_unstable();
            q.dedup();
            q.len()
        };
        let degraded = self.needs_degraded;

        // Fleet-wide aggregate: identity fields from tenant 0's engine
        // (all tenants share the base config), cache/session deltas and
        // catalog counters summed across tenants.
        let overall_scope = ReportScope {
            trace_seed: self.meta.trace_seed,
            zipf_s: self.meta.zipf_s,
            sessions: self.meta.sessions.unwrap_or(self.global_session_runs),
            unique_queries: unique(&self.all_queries),
            arrivals: self.meta.arrivals,
        };
        let embed_delta = |t: usize| {
            self.fleet.engines[t]
                .embed_cache
                .stats()
                .since(&self.embed_before[t])
        };
        let memo_delta = |t: usize| {
            self.fleet.engines[t]
                .memo
                .stats()
                .since(&self.memo_before[t])
        };
        let fast_delta =
            |t: usize| self.fleet.engines[t].session_fast_hits - self.session_fast_before[t];
        let tenants = self.fleet.engines.len();
        // The fleet-wide transition count is the sum over per-tenant
        // governors; sustained watts came from the passive fleet-wide
        // estimator as the stream ran.
        self.energy.transitions = self.tenant_transitions.iter().sum();
        let overall = self.fleet.engines[0].compose_report(
            &overall_scope,
            self.workers,
            &self.outcomes,
            degraded.then_some(self.degraded_outcomes.as_slice()),
            &outcome.overall,
            EnergyAccounting {
                eco_outcomes: self.needs_eco.then_some(self.eco_outcomes.as_slice()),
                chosen: &self.chosen,
                ledger: &self.energy,
                knobs: Some(self.base_governor),
            },
            (0..tenants).fold(CacheStats::default(), |acc, t| acc.plus(&embed_delta(t))),
            (0..tenants).fold(CacheStats::default(), |acc, t| acc.plus(&memo_delta(t))),
            (0..tenants).map(fast_delta).sum(),
            self.fleet.engines[0].boot.clone(),
            (0..tenants).fold(CatalogReport::unchanged(), |acc, t| {
                sum_catalog(&acc, &self.fleet.engines[t].catalog_report())
            }),
            wall_seconds,
        );

        // Per-tenant breakdowns through the identical aggregation path:
        // each tenant's outcomes in global submission order, its own
        // admission projection, its own cache deltas.
        let embed_floor = self.fleet.config.effective_embed_floor();
        let memo_floor = self.fleet.config.effective_memo_floor();
        let tenant_reports: Vec<TenantReport> = (0..tenants)
            .map(|t| {
                let picked: Vec<usize> = self
                    .tenant_of
                    .iter()
                    .enumerate()
                    .filter(|(_, owner)| **owner == t)
                    .map(|(i, _)| i)
                    .collect();
                let outcomes: Vec<RequestOutcome> =
                    picked.iter().map(|i| self.outcomes[*i].clone()).collect();
                let degraded_outcomes: Vec<RequestOutcome> = if degraded {
                    picked
                        .iter()
                        .map(|i| self.degraded_outcomes[*i].clone())
                        .collect()
                } else {
                    Vec::new()
                };
                let eco_outcomes: Vec<RequestOutcome> = if self.needs_eco {
                    picked
                        .iter()
                        .map(|i| self.eco_outcomes[*i].clone())
                        .collect()
                } else {
                    Vec::new()
                };
                let chosen: Vec<ServiceLevel> = picked.iter().map(|i| self.chosen[*i]).collect();
                // The tenant's ledger is the picked subsequence of the
                // global one, with the tenant's own transition count and
                // its governor's windowed watts peak.
                let ledger = EnergyLedger {
                    joules: picked
                        .iter()
                        .map(|i| self.energy.joules.get(*i).copied().unwrap_or(0.0))
                        .collect(),
                    grams: picked
                        .iter()
                        .map(|i| self.energy.grams.get(*i).copied().unwrap_or(0.0))
                        .collect(),
                    transitions: self.tenant_transitions[t],
                    sustained_watts_max: self.tenant_watts_max[t],
                };
                let scope = ReportScope {
                    trace_seed: self.meta.trace_seed,
                    zipf_s: self.meta.zipf_s,
                    sessions: self.session_runs[t],
                    unique_queries: unique(&self.queries[t]),
                    arrivals: self.meta.arrivals,
                };
                let report = self.fleet.engines[t].compose_report(
                    &scope,
                    self.workers,
                    &outcomes,
                    degraded.then_some(degraded_outcomes.as_slice()),
                    &outcome.tenant_outcome(t),
                    EnergyAccounting {
                        eco_outcomes: self.needs_eco.then_some(eco_outcomes.as_slice()),
                        chosen: &chosen,
                        ledger: &ledger,
                        knobs: None,
                    },
                    embed_delta(t),
                    memo_delta(t),
                    fast_delta(t),
                    self.fleet.engines[t].boot.clone(),
                    self.fleet.engines[t].catalog_report(),
                    wall_seconds,
                );
                TenantReport {
                    tenant: t as u64,
                    report,
                    embed_capacity: self.fleet.engines[t].config.embed_cache_capacity,
                    embed_floor,
                    memo_capacity: self.fleet.engines[t].config.memo_capacity,
                    memo_floor,
                }
            })
            .collect();

        (
            FleetReport {
                overall,
                tenants: tenant_reports,
            },
            events,
        )
    }

    /// Builds the event for a resolved request, billing the outcome its
    /// disposition actually serves, and records the request's final
    /// energy and carbon grams against the owning tenant's carbon trace
    /// (same arithmetic as [`crate::ServeSession`]'s event path).
    fn event(&mut self, index: usize, disposition: crate::admission::Disposition) -> RequestEvent {
        use crate::admission::Disposition;
        let service_s = match disposition {
            Disposition::Shed => None,
            Disposition::Degraded { .. } => Some(if self.needs_degraded {
                self.degraded_outcomes[index].seconds
            } else {
                self.outcomes[index].seconds
            }),
            Disposition::Served { .. } => Some(match self.chosen.get(index) {
                Some(ServiceLevel::Economy) => self.eco_outcomes[index].seconds,
                _ => self.outcomes[index].seconds,
            }),
        };
        if let Some(wait_s) = disposition.wait_s() {
            let execution_joules = match disposition {
                Disposition::Degraded { .. } => self.floor_joules(index),
                _ => self.variant_joules(index),
            };
            let joules = execution_joules + wait_s * self.idle_power_w;
            let arrival = self.arrivals.get(index).copied().unwrap_or(0.0);
            let tenant = self.tenant_of[index];
            let grams = joules
                * self.fleet.engines[tenant]
                    .carbon
                    .grams_per_joule_at(arrival);
            self.energy.record(index, joules, grams);
        }
        RequestEvent {
            ticket: Ticket(index),
            disposition,
            service_s,
        }
    }
}

/// Adds two catalog reports field-by-field — the fleet-wide `catalog`
/// section is the sum over tenants (epoch included: the fleet total is
/// total mutations applied anywhere, since each engine's epoch counts
/// its own mutations).
fn sum_catalog(a: &CatalogReport, b: &CatalogReport) -> CatalogReport {
    CatalogReport {
        epoch: a.epoch + b.epoch,
        registered: a.registered + b.registered,
        retired: a.retired + b.retired,
        tombstones: a.tombstones + b.tombstones,
        compactions: a.compactions + b.compactions,
        cluster_refreshes: a.cluster_refreshes + b.cluster_refreshes,
        memo_invalidations: a.memo_invalidations + b.memo_invalidations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_grants_floors_and_splits_spare_by_weight() {
        // 100 entries, floor 10, weights 3:1 → floors 10+10, spare 80
        // splits 60:20.
        assert_eq!(partition(100, 10, &[300, 100]), vec![70, 30]);
        // All-zero weights split equally.
        assert_eq!(partition(100, 10, &[0, 0]), vec![50, 50]);
        // Largest-remainder: spare 7 over equal weights → extra entry to
        // the lower ids first.
        assert_eq!(partition(10, 1, &[0, 0, 0]), vec![4, 3, 3]);
        // A dominant tenant can never push another below the floor.
        let slices = partition(64, 8, &[1_000_000, 1]);
        assert_eq!(slices.iter().sum::<usize>(), 64);
        assert!(slices[1] >= 8, "cold tenant pushed below floor: {slices:?}");
        // Floor too large for the budget is clamped to an equal share.
        assert_eq!(partition(6, 100, &[0, 0, 0]), vec![2, 2, 2]);
    }

    #[test]
    fn partition_is_exact_and_deterministic_under_extreme_weights() {
        let weights = [u64::MAX, u64::MAX - 1, 1, 0];
        let slices = partition(1000, 5, &weights);
        assert_eq!(slices.iter().sum::<usize>(), 1000);
        assert!(slices.iter().all(|s| *s >= 5));
        assert_eq!(slices, partition(1000, 5, &weights));
        assert!(slices[0] >= slices[1] && slices[1] > slices[2]);
    }

    #[test]
    fn fleet_config_validates_budgets() {
        let base = ServeConfig::default();
        assert!(FleetConfig::new(4, base).validate().is_ok());
        let mut starved = FleetConfig::new(4, base);
        starved.embed_budget = 3;
        assert!(starved.validate().unwrap_err().contains("embed budget"));
        let mut empty = FleetConfig::new(0, base);
        empty.tenants = 0;
        assert!(empty.validate().is_err());
    }
}
