//! The seeded-LRU cache used for query embeddings and selection memos.
//!
//! Serving needs *deterministic* cache behaviour: the engine plans every
//! request's hit/miss outcome in canonical arrival order before any
//! parallel work starts, so the cache must be a plain sequential data
//! structure with exact LRU eviction — no clocks, no sampling, no hash
//! iteration order. Entries can be **reserved** (key present, value still
//! being computed) and **filled** later, which is how the engine overlaps
//! a sequential cache plan with parallel value computation, and **seeded**
//! up front with warm entries (hence "seeded-LRU": the engine pre-loads
//! the training queries' embeddings at startup so the first requests of a
//! cold trace already find warm state).

/// Monotonic counters a cache accumulates over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found the key (filled or reserved).
    pub hits: u64,
    /// Lookups that missed and reserved a slot.
    pub misses: u64,
    /// Slots claimed for a key: miss-path reservations and seeds. Counted
    /// at reservation time (not at [`LruCache::fill`]) so every counter is
    /// a pure function of the lookup sequence — a reservation that gets
    /// evicted before its fill lands still counts, which keeps incremental
    /// (fill-per-batch) and batch (fill-at-end) replays bit-identical.
    pub insertions: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot of the same cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// Field-by-field sum — how a fleet report aggregates per-tenant
    /// cache deltas into its fleet-wide `caches` section.
    pub fn plus(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// Outcome of [`LruCache::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup<V> {
    /// Key present with a computed value.
    Hit(V),
    /// Key present but its value is still being computed (reserved earlier
    /// in the same planning pass).
    Reserved,
    /// Key absent; a slot was reserved for it.
    Miss,
}

/// Sentinel for "no slot" in the recency list.
const NONE: usize = usize::MAX;

/// One arena slot of the recency list.
#[derive(Debug, Clone)]
struct Slot<V> {
    key: String,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A deterministic LRU cache over string keys.
///
/// A hash index maps keys to arena slots threaded on an intrusive
/// doubly-linked recency list (head = most recent), so every operation is
/// O(1) — the sequential plan stage stays linear in the number of
/// requests regardless of capacity. Eviction order is exact LRU and never
/// depends on hash iteration order: the victim is always the list tail.
#[derive(Debug, Clone)]
pub struct LruCache<V> {
    capacity: usize,
    index: std::collections::HashMap<String, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl<V: Clone> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            index: std::collections::HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            stats: CacheStats::default(),
        }
    }

    /// Unlinks `slot` from the recency list.
    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links `slot` at the head (most recent position).
    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NONE;
        self.slots[slot].next = self.head;
        if self.head != NONE {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Inserts a new entry at the front, evicting the tail if full.
    fn insert_front(&mut self, key: String, value: Option<V>) {
        if self.index.len() == self.capacity {
            let victim = self.tail;
            self.detach(victim);
            self.index.remove(&self.slots[victim].key);
            self.slots[victim].value = None;
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot].key.clone_from(&key);
                self.slots[slot].value = value;
                slot
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.slots.len() - 1
            }
        };
        self.attach_front(slot);
        self.index.insert(key, slot);
    }

    /// Looks `key` up, refreshing its recency. On a miss, reserves a slot
    /// for the key (evicting the least recently used entry if full) so a
    /// later [`LruCache::fill`] can complete it.
    pub fn lookup(&mut self, key: &str) -> Lookup<V> {
        if let Some(&slot) = self.index.get(key) {
            self.detach(slot);
            self.attach_front(slot);
            self.stats.hits += 1;
            return match &self.slots[slot].value {
                Some(v) => Lookup::Hit(v.clone()),
                None => Lookup::Reserved,
            };
        }
        self.stats.misses += 1;
        self.stats.insertions += 1;
        self.insert_front(key.to_owned(), None);
        Lookup::Miss
    }

    /// Writes the computed value for a previously reserved `key`. A no-op
    /// if the reservation was evicted in the meantime (the value is simply
    /// recomputed on the next miss) or already filled. Never touches
    /// recency or counters, so *when* fills happen (per batch vs at the
    /// end of a trace) cannot influence any observable cache state.
    pub fn fill(&mut self, key: &str, value: V) {
        if let Some(&slot) = self.index.get(key) {
            if self.slots[slot].value.is_none() {
                self.slots[slot].value = Some(value);
            }
        }
    }

    /// Seeds a warm entry without counting a miss (startup pre-warming).
    /// Refreshes recency if the key already exists.
    pub fn seed(&mut self, key: String, value: V) {
        if let Some(&slot) = self.index.get(key.as_str()) {
            self.detach(slot);
            self.attach_front(slot);
            self.slots[slot].value = Some(value);
            return;
        }
        self.insert_front(key, Some(value));
        self.stats.insertions += 1;
    }

    /// Resident entries from **least- to most-recently used**, reserved
    /// (still-valueless) slots as `None`. This is the checkpoint order:
    /// replaying the pairs through [`LruCache::restore`] rebuilds an
    /// identical recency list, so eviction behaviour after a restore is
    /// bit-identical to the cache that was checkpointed.
    pub fn entries_lru(&self) -> Vec<(&str, Option<&V>)> {
        let mut out = Vec::with_capacity(self.index.len());
        let mut slot = self.tail;
        while slot != NONE {
            let s = &self.slots[slot];
            out.push((s.key.as_str(), s.value.as_ref()));
            slot = s.prev;
        }
        out
    }

    /// Rebuilds a cache from checkpointed state: `entries` in the order
    /// produced by [`LruCache::entries_lru`] (least-recent first) plus
    /// the lifetime counters at checkpoint time.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `entries` exceeds it (a checkpoint
    /// can only be restored into an engine configured at least as large).
    pub fn restore(
        capacity: usize,
        entries: impl IntoIterator<Item = (String, Option<V>)>,
        stats: CacheStats,
    ) -> Self {
        let mut cache = Self::new(capacity);
        for (key, value) in entries {
            assert!(
                cache.index.len() < capacity,
                "checkpoint holds more than {capacity} entries"
            );
            assert!(
                !cache.index.contains_key(&key),
                "checkpoint repeats key {key:?}"
            );
            cache.insert_front(key, value);
        }
        cache.stats = stats;
        cache
    }

    /// Changes the capacity in place, evicting from the LRU tail until
    /// the resident set fits. Growing never evicts; shrinking evicts
    /// exactly `len - new_capacity` entries (counted in
    /// [`CacheStats::evictions`]) in exact LRU order — this is how the
    /// fleet's shared-budget partitioner reclaims space from one tenant
    /// to grant it to another without ever touching recency order.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity` is zero.
    pub fn resize(&mut self, new_capacity: usize) {
        assert!(new_capacity > 0, "cache capacity must be positive");
        while self.index.len() > new_capacity {
            let victim = self.tail;
            self.detach(victim);
            self.index.remove(&self.slots[victim].key);
            self.slots[victim].value = None;
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        self.capacity = new_capacity;
    }

    /// Number of resident entries (filled or reserved).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert_eq!(c.lookup("a"), Lookup::Miss);
        assert_eq!(c.lookup("a"), Lookup::Reserved);
        c.fill("a", 7);
        assert_eq!(c.lookup("a"), Lookup::Hit(7));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (2, 1, 1));
    }

    #[test]
    fn eviction_is_exact_lru() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.seed("a".into(), 1);
        c.seed("b".into(), 2);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(c.lookup("a"), Lookup::Hit(1));
        assert_eq!(c.lookup("c"), Lookup::Miss); // evicts "b"
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup("b"), Lookup::Miss); // gone → evicts "a"
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fill_after_eviction_is_a_noop() {
        let mut c: LruCache<u32> = LruCache::new(1);
        assert_eq!(c.lookup("a"), Lookup::Miss);
        assert_eq!(c.lookup("b"), Lookup::Miss); // evicts reserved "a"
        c.fill("a", 9);
        assert_eq!(c.lookup("a"), Lookup::Miss); // still absent (evicts "b")
                                                 // Insertions count reservations, so the doomed "a" and "b" slots
                                                 // (and the re-reservation of "a") all count even though no fill
                                                 // ever landed — the counter depends only on the lookup sequence.
        assert_eq!(c.stats().insertions, 3);
    }

    #[test]
    fn seeding_counts_insertions_not_hits() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.seed("warm".into(), 5);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (0, 0, 1));
        assert_eq!(c.lookup("warm"), Lookup::Hit(5));
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.seed("a".into(), 1);
        let before = c.stats();
        let _ = c.lookup("a");
        let _ = c.lookup("x");
        let delta = c.stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (1, 1));
        assert_eq!(delta.insertions, 1); // the "x" reservation
    }

    #[test]
    fn checkpoint_entries_roundtrip_preserves_recency_and_stats() {
        let mut c: LruCache<u32> = LruCache::new(3);
        c.seed("a".into(), 1);
        c.seed("b".into(), 2);
        assert_eq!(c.lookup("a"), Lookup::Hit(1)); // "b" is now LRU
        assert_eq!(c.lookup("r"), Lookup::Miss); // reserved, most recent

        let entries: Vec<(String, Option<u32>)> = c
            .entries_lru()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v.copied()))
            .collect();
        assert_eq!(
            entries,
            vec![
                ("b".to_owned(), Some(2)),
                ("a".to_owned(), Some(1)),
                ("r".to_owned(), None),
            ]
        );
        let mut restored = LruCache::restore(3, entries, c.stats());
        assert_eq!(restored.stats(), c.stats());
        assert_eq!(restored.len(), 3);
        // Same victim order: the next miss evicts "b" in both.
        assert_eq!(c.lookup("x"), Lookup::Miss);
        assert_eq!(restored.lookup("x"), Lookup::Miss);
        assert_eq!(c.lookup("b"), Lookup::Miss);
        assert_eq!(restored.lookup("b"), Lookup::Miss);
        // The reserved slot survived as reserved.
        let mut fresh = LruCache::restore(
            3,
            vec![("r".to_owned(), None::<u32>)],
            CacheStats::default(),
        );
        assert_eq!(fresh.lookup("r"), Lookup::Reserved);
    }

    #[test]
    fn resize_evicts_exact_lru_tail_and_never_more() {
        let mut c: LruCache<u32> = LruCache::new(4);
        c.seed("a".into(), 1);
        c.seed("b".into(), 2);
        c.seed("c".into(), 3);
        assert_eq!(c.lookup("a"), Lookup::Hit(1)); // "b" is now LRU
        c.resize(2); // evicts "b"
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup("b"), Lookup::Miss); // gone → evicts "c"
        c.resize(8); // growing evicts nothing
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.len(), 2);
        // And the grown cache accepts new entries without eviction.
        assert_eq!(c.lookup("d"), Lookup::Miss);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 0,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
