//! Engine-level integration and property tests.

use lim_core::{Policy, Snapshot, SnapshotError};
use lim_llm::{ModelProfile, Quant};
use lim_workloads::trace::{zipf_trace, ArrivalProcess, SessionTrace, TraceConfig, TraceSession};
use proptest::prelude::*;

use crate::admission::{AdmissionConfig, ShedPolicy};
use crate::{GovernorConfig, ServeConfig, ServeEngine, ServeReport};

fn model() -> ModelProfile {
    ModelProfile::by_name("llama3.1-8b").expect("model exists")
}

fn bfcl_trace(pool: usize, seed: u64, sessions: usize) -> (lim_workloads::Workload, SessionTrace) {
    let w = lim_workloads::bfcl(seed, pool);
    let trace = zipf_trace(
        &w,
        &TraceConfig {
            seed,
            sessions,
            requests_per_session: 8,
            ..TraceConfig::default()
        },
    );
    (w, trace)
}

fn fresh_replay(workers: usize) -> ServeReport {
    let (w, trace) = bfcl_trace(120, 7, 48);
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    engine.process_trace(&trace, workers).expect("valid trace")
}

/// The acceptance criterion: for worker counts 1, 4 and 8, a fresh
/// engine replaying the same Zipf(1.0) trace produces bit-identical
/// deterministic reports — accuracy, latency percentiles *and* cache
/// counters — and the embedding cache hits on more than half the
/// lookups.
#[test]
fn replay_is_bit_identical_across_worker_counts_with_warm_caches() {
    let baseline = fresh_replay(1);
    for workers in [4, 8] {
        let other = fresh_replay(workers);
        assert_eq!(
            baseline.deterministic_view(),
            other.deterministic_view(),
            "workers={workers}"
        );
    }
    assert!(
        baseline.embed_cache.hit_rate() > 0.5,
        "embedding cache hit rate {:.3} on a Zipf(1.0) trace",
        baseline.embed_cache.hit_rate()
    );
    assert!(baseline.latency.p50_s > 0.0);
    assert!(baseline.latency.p99_s >= baseline.latency.p95_s);
    assert!(baseline.latency.p95_s >= baseline.latency.p50_s);
}

#[test]
fn long_lived_engine_gets_faster_on_repetition() {
    let (w, trace) = bfcl_trace(80, 3, 24);
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    let cold = engine.process_trace(&trace, 2).expect("valid trace");
    let warm = engine.process_trace(&trace, 2).expect("valid trace");
    // Same accuracy — caching must never change outcomes.
    assert_eq!(cold.success_rate, warm.success_rate);
    assert_eq!(cold.tool_accuracy, warm.tool_accuracy);
    assert_eq!(cold.avg_offered_tools, warm.avg_offered_tools);
    // But the warm replay answers every selection from cache…
    assert_eq!(warm.embed_cache.misses, 0, "warm replay should not miss");
    assert_eq!(warm.selection_memo.misses, 0);
    // …and its simulated latency drops accordingly.
    assert!(
        warm.sim_total_seconds < cold.sim_total_seconds,
        "warm {:.1}s vs cold {:.1}s",
        warm.sim_total_seconds,
        cold.sim_total_seconds
    );
    assert_eq!(
        engine.requests_served(),
        (cold.requests + warm.requests) as u64
    );
}

#[test]
fn caching_never_changes_outcomes_vs_uncached_engine() {
    // An engine with 1-entry caches (permanent thrash) must agree with a
    // generously cached engine on every accuracy metric.
    let (w, trace) = bfcl_trace(60, 9, 20);
    let tiny = ServeConfig::builder().caches(1, 1).prewarm(false).build();
    let mut thrashing = ServeEngine::new(w.clone(), model(), tiny);
    let mut cached = ServeEngine::new(w, model(), ServeConfig::default());
    let a = thrashing.process_trace(&trace, 3).expect("valid trace");
    let b = cached.process_trace(&trace, 3).expect("valid trace");
    assert_eq!(a.success_rate, b.success_rate);
    assert_eq!(a.tool_accuracy, b.tool_accuracy);
    assert_eq!(a.avg_offered_tools, b.avg_offered_tools);
    assert_eq!(a.level1_share, b.level1_share);
    assert_eq!(a.level2_share, b.level2_share);
    assert!(a.embed_cache.evictions > 0, "tiny cache must evict");
}

#[test]
fn session_fast_path_fires_on_repeated_queries() {
    let w = lim_workloads::bfcl(5, 30);
    // Hand-build a trace where one session repeats the same query.
    let trace = SessionTrace {
        benchmark: "bfcl".into(),
        seed: 0,
        zipf_s: 0.0,
        pool_size: 30,
        arrivals: ArrivalProcess::BackToBack,
        tenants: 1,
        sessions: vec![lim_workloads::trace::TraceSession {
            id: 77,
            tenant: 0,
            query_indices: vec![4, 4, 4, 9, 4],
            arrival_us: Vec::new(),
        }],
        churn: Vec::new(),
    };
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    let report = engine.process_trace(&trace, 1).expect("valid trace");
    // Requests 2 and 3 repeat the session's previous key; request 5
    // follows a different query so it goes through the memo again.
    assert_eq!(report.session_fast_hits, 2);
    assert_eq!(report.requests, 5);
}

#[test]
fn gorilla_and_default_policies_are_served() {
    let (w, trace) = bfcl_trace(40, 11, 10);
    for policy in [Policy::Gorilla { k: 3 }, Policy::Default] {
        let config = ServeConfig::builder().policy(policy).build();
        let mut engine = ServeEngine::new(w.clone(), model(), config);
        let report = engine.process_trace(&trace, 2).expect("valid trace");
        assert_eq!(report.requests, trace.requests());
        assert_eq!(report.policy, policy.label());
        match policy {
            Policy::Gorilla { .. } => {
                assert!(report.avg_offered_tools <= 3.0);
                assert!(report.level1_share > 0.99);
            }
            _ => {
                assert!(report.avg_offered_tools > 40.0);
                assert!(report.level3_share > 0.99);
                // Vanilla calling never touches the caches.
                assert_eq!(report.embed_cache.hits + report.embed_cache.misses, 0);
            }
        }
    }
}

#[test]
fn mismatched_traces_are_rejected() {
    let w = lim_workloads::bfcl(1, 20);
    let geo = lim_workloads::geoengine(1, 20);
    let trace = zipf_trace(&geo, &TraceConfig::default());
    let mut engine = ServeEngine::new(w.clone(), model(), ServeConfig::default());
    assert!(engine.process_trace(&trace, 1).is_err());

    let mut out_of_range = zipf_trace(&w, &TraceConfig::default());
    out_of_range.benchmark = "bfcl".into();
    out_of_range.sessions[0].query_indices.push(999);
    assert!(engine.process_trace(&out_of_range, 1).is_err());
}

#[test]
fn report_serializes_to_parseable_json() {
    let report = fresh_replay(2);
    let text = report.to_json().to_pretty_string();
    let doc = lim_json::parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(lim_json::Value::as_str),
        Some("lim-serve/report-v5")
    );
    let energy = doc.get("energy").expect("energy section");
    for field in [
        "device",
        "power_cap_w",
        "joules_per_request",
        "sustained_watts_max",
        "gco2_per_1k_requests",
        "governor_transitions",
    ] {
        assert!(energy.get(field).is_some(), "missing energy.{field}");
    }
    let catalog = doc.get("catalog").expect("catalog section");
    for field in [
        "epoch",
        "registered",
        "retired",
        "tombstones",
        "compactions",
        "cluster_refreshes",
        "memo_invalidations",
    ] {
        assert!(
            catalog
                .get(field)
                .and_then(lim_json::Value::as_i64)
                .is_some(),
            "missing catalog.{field}"
        );
    }
    let admission = doc.get("admission").expect("admission section");
    for field in ["admitted", "degraded", "shed", "max_queue_depth"] {
        assert!(
            admission
                .get(field)
                .and_then(lim_json::Value::as_i64)
                .is_some(),
            "missing admission.{field}"
        );
    }
    assert!(admission
        .get("queue_wait")
        .and_then(|q| q.get("p95_s"))
        .and_then(lim_json::Value::as_f64)
        .is_some());
    let boot = doc.get("boot").expect("boot section");
    assert_eq!(
        boot.get("mode").and_then(lim_json::Value::as_str),
        Some("cold")
    );
    assert_eq!(
        boot.get("build_skipped").and_then(lim_json::Value::as_bool),
        Some(false)
    );
    assert!(boot
        .get("sim_boot_seconds")
        .and_then(lim_json::Value::as_f64)
        .is_some_and(|s| s > 0.0));
    let caches = doc.get("caches").expect("caches section");
    let embed = caches.get("embedding").expect("embedding cache");
    assert!(embed
        .get("hit_rate")
        .and_then(lim_json::Value::as_f64)
        .is_some());
    let latency = doc.get("latency").expect("latency section");
    for field in ["p50_s", "p95_s", "p99_s"] {
        assert!(
            latency
                .get(field)
                .and_then(lim_json::Value::as_f64)
                .is_some(),
            "missing {field}"
        );
    }
    assert_eq!(
        doc.get("trace")
            .and_then(|t| t.get("requests"))
            .and_then(lim_json::Value::as_i64),
        Some(report.requests as i64)
    );
}

#[test]
fn serve_matches_geoengine_chains_too() {
    let w = lim_workloads::geoengine(13, 60);
    let trace = zipf_trace(
        &w,
        &TraceConfig {
            seed: 13,
            sessions: 16,
            requests_per_session: 6,
            ..TraceConfig::default()
        },
    );
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    let report = engine.process_trace(&trace, 4).expect("valid trace");
    assert_eq!(report.requests, trace.requests());
    assert!(report.success_rate > 0.0 && report.success_rate <= 1.0);
    // Sequential chains lean on Level 2 clusters.
    assert!(report.level2_share > 0.0);
}

/// Splits a trace's flat request stream at `index`, preserving session
/// structure: the straddling session is cut into two [`TraceSession`]s
/// with the **same id**, so session warm state must survive a
/// checkpoint/restore for the suffix to replay identically.
fn split_trace(trace: &SessionTrace, index: usize) -> (SessionTrace, SessionTrace) {
    let mut prefix = SessionTrace {
        sessions: Vec::new(),
        ..trace.clone()
    };
    let mut suffix = prefix.clone();
    let mut remaining = index;
    for session in &trace.sessions {
        let n = session.query_indices.len();
        let take = remaining.min(n);
        remaining -= take;
        if take > 0 {
            prefix.sessions.push(TraceSession {
                id: session.id,
                tenant: session.tenant,
                query_indices: session.query_indices[..take].to_vec(),
                arrival_us: Vec::new(),
            });
        }
        if take < n {
            suffix.sessions.push(TraceSession {
                id: session.id,
                tenant: session.tenant,
                query_indices: session.query_indices[take..].to_vec(),
                arrival_us: Vec::new(),
            });
        }
    }
    (prefix, suffix)
}

/// The tentpole acceptance property: for any trace split point and any
/// worker count, checkpointing after the prefix and restoring into a
/// fresh process replays the suffix bit-identically to the engine that
/// never went down. (Boot accounting differs by construction and is
/// neutralized by `deterministic_view`.)
fn assert_restore_equals_continuous(
    seed: u64,
    sessions: usize,
    split_index: usize,
    workers: usize,
) {
    let (w, levels) = fixture();
    let trace = zipf_trace(
        w,
        &TraceConfig {
            seed,
            sessions,
            requests_per_session: 5,
            ..TraceConfig::default()
        },
    );
    let split_index = split_index % trace.requests().max(1);
    let (prefix, suffix) = split_trace(&trace, split_index);
    let config = ServeConfig::default();

    let mut continuous = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
    let mut interrupted = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
    if !prefix.sessions.is_empty() {
        continuous.process_trace(&prefix, workers).expect("prefix");
        interrupted.process_trace(&prefix, workers).expect("prefix");
    }
    let bytes = interrupted.checkpoint();
    // Byte-determinism: the same state checkpoints identically.
    assert_eq!(bytes, interrupted.checkpoint());
    let snapshot = Snapshot::parse(&bytes).expect("valid checkpoint");
    let mut restored = ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), config)
        .expect("restore succeeds");
    assert_eq!(restored.requests_served(), interrupted.requests_served());

    let expected = continuous.process_trace(&suffix, workers).expect("suffix");
    let actual = restored.process_trace(&suffix, workers).expect("suffix");
    assert_eq!(
        expected.deterministic_view(),
        actual.deterministic_view(),
        "seed={seed} sessions={sessions} split={split_index} workers={workers}"
    );
    assert_eq!(expected.embed_cache, actual.embed_cache);
    assert_eq!(expected.selection_memo, actual.selection_memo);
    assert_eq!(expected.session_fast_hits, actual.session_fast_hits);
}

/// A snapshot boot computes exactly what a cold boot computes — the CI
/// round-trip gate, in-process, for the acceptance worker counts.
#[test]
fn snapshot_boot_is_bit_identical_to_cold_boot_for_workers_1_4_8() {
    let (w, trace) = bfcl_trace(120, 7, 48);
    let bytes = lim_core::write_levels_snapshot(
        &lim_core::SearchLevels::build(&w),
        "bfcl",
        7,
        w.queries.len(),
    );
    let snapshot = Snapshot::parse(&bytes).expect("valid snapshot");
    for workers in [1, 4, 8] {
        let mut cold = ServeEngine::new(w.clone(), model(), ServeConfig::default());
        let mut warm =
            ServeEngine::from_snapshot(&snapshot, w.clone(), model(), ServeConfig::default())
                .expect("snapshot boot");
        assert!(warm.boot().build_skipped);
        assert_eq!(warm.boot().mode, "snapshot");
        assert!(!cold.boot().build_skipped);
        assert!(
            warm.boot().sim_boot_seconds < cold.boot().sim_boot_seconds,
            "snapshot boot {:.4}s must undercut cold boot {:.4}s",
            warm.boot().sim_boot_seconds,
            cold.boot().sim_boot_seconds
        );
        let a = cold.process_trace(&trace, workers).expect("cold replay");
        let b = warm.process_trace(&trace, workers).expect("warm replay");
        assert_eq!(
            a.deterministic_view(),
            b.deterministic_view(),
            "workers={workers}"
        );
    }
    // A boot that never touches the warm sections leaves them undecoded:
    // the lazy-loading contract, observed through a checkpoint file.
    let mut engine = ServeEngine::new(w.clone(), model(), ServeConfig::default());
    engine.process_trace(&trace, 2).expect("warm up");
    let checkpoint_bytes = engine.checkpoint();
    let checkpoint = Snapshot::parse(&checkpoint_bytes).expect("valid checkpoint");
    let from_checkpoint_file =
        ServeEngine::from_snapshot(&checkpoint, w, model(), ServeConfig::default())
            .expect("levels-only boot from a checkpoint file");
    let decoded = checkpoint.decoded_sections();
    assert!(
        !decoded.contains(&crate::snapshot::SECTION_EMBED_CACHE)
            && !decoded.contains(&crate::snapshot::SECTION_MEMO)
            && !decoded.contains(&crate::snapshot::SECTION_SESSIONS),
        "warm sections must stay undecoded on a levels boot: {decoded:?}"
    );
    // And undecoded bytes are never billed: the boot cost of a levels
    // boot from the (much larger) checkpoint file stays below the cost
    // of decoding its whole payload.
    assert!(
        from_checkpoint_file.boot().sim_boot_seconds
            < checkpoint.payload_len() as f64 * crate::engine::SNAPSHOT_DECODE_SECONDS_PER_BYTE
                + from_checkpoint_file.boot().warm_embed_entries as f64
                    * ServeConfig::default().embed_seconds_per_text,
        "levels boot billed for warm sections it never decoded"
    );
}

/// Explicit acceptance splits (empty prefix, mid-session, empty suffix)
/// at the acceptance worker counts; the proptest sweeps the space.
#[test]
fn checkpoint_restore_matches_continuous_engine_at_fixed_splits() {
    for (split, workers) in [(0, 1), (7, 4), (13, 8), (usize::MAX, 2)] {
        assert_restore_equals_continuous(21, 8, split, workers);
    }
}

/// After two replays every session's last selection is memo-resident
/// (`Ready`), so the checkpoint must carry real per-session warm state —
/// and a third replay on the restored engine must still match the
/// engine that never restarted, fast-path hits included.
#[test]
fn checkpoint_after_multiple_traces_preserves_ready_session_state() {
    let (w, trace) = bfcl_trace(60, 5, 16);
    let config = ServeConfig::default();
    let mut continuous = ServeEngine::new(w.clone(), model(), config);
    let mut interrupted = ServeEngine::new(w.clone(), model(), config);
    for _ in 0..2 {
        continuous.process_trace(&trace, 3).expect("replay");
        interrupted.process_trace(&trace, 3).expect("replay");
    }
    let bytes = interrupted.checkpoint();
    let snapshot = Snapshot::parse(&bytes).expect("valid checkpoint");
    assert!(
        snapshot
            .section_len(crate::snapshot::SECTION_SESSIONS)
            .expect("sessions section")
            > 2,
        "memo-resident sessions must serialize (not the empty array)"
    );
    let mut restored =
        ServeEngine::from_checkpoint(&snapshot, w, model(), config).expect("restore");
    let expected = continuous.process_trace(&trace, 3).expect("third replay");
    let actual = restored.process_trace(&trace, 3).expect("third replay");
    assert_eq!(expected.deterministic_view(), actual.deterministic_view());
    assert_eq!(expected.session_fast_hits, actual.session_fast_hits);
    assert_eq!(actual.selection_memo.misses, 0, "fully warm after restore");
}

/// Restores are refused — with typed errors — when the checkpoint comes
/// from a different workload or engine configuration, and corrupted or
/// truncated files never produce an engine.
#[test]
fn corrupted_or_mismatched_checkpoints_are_rejected() {
    let (w, trace) = bfcl_trace(40, 11, 10);
    let mut engine = ServeEngine::new(w.clone(), model(), ServeConfig::default());
    engine.process_trace(&trace, 2).expect("warm up");
    let bytes = engine.checkpoint();

    // Truncation: typed at parse time.
    assert!(matches!(
        Snapshot::parse(&bytes[..bytes.len() / 2]).unwrap_err(),
        SnapshotError::Truncated { .. } | SnapshotError::Header(_)
    ));
    // Bit corruption inside a section payload: typed at decode time.
    let mut corrupt = bytes.clone();
    let len = corrupt.len();
    corrupt[len - 1] = b'!'; // the sessions section's closing bracket
    let snapshot = Snapshot::parse(&corrupt).expect("header intact");
    assert!(matches!(
        ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), ServeConfig::default())
            .unwrap_err(),
        SnapshotError::Section { .. }
    ));

    let snapshot = Snapshot::parse(&bytes).expect("valid checkpoint");
    // Wrong workload.
    let geo = lim_workloads::geoengine(11, 40);
    assert!(matches!(
        ServeEngine::from_checkpoint(&snapshot, geo, model(), ServeConfig::default()).unwrap_err(),
        SnapshotError::Mismatch(_)
    ));
    // Wrong engine configuration: the cached values would be stale.
    let other_quant = ServeConfig::builder().quant(Quant::Q8_0).build();
    assert!(matches!(
        ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), other_quant).unwrap_err(),
        SnapshotError::Mismatch(_)
    ));
    // A levels-only snapshot carries no warm state to restore.
    let levels_only = lim_core::write_levels_snapshot(
        &lim_core::SearchLevels::build(&w),
        "bfcl",
        11,
        w.queries.len(),
    );
    let levels_snapshot = Snapshot::parse(&levels_only).expect("valid snapshot");
    assert!(matches!(
        ServeEngine::from_checkpoint(&levels_snapshot, w, model(), ServeConfig::default())
            .unwrap_err(),
        SnapshotError::Mismatch(_)
    ));
}

/// Shared fixture: workload construction and level building dominate the
/// property test's runtime; only the trace and quant vary per case.
fn fixture() -> &'static (lim_workloads::Workload, lim_core::SearchLevels) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(lim_workloads::Workload, lim_core::SearchLevels)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = lim_workloads::bfcl(17, 60);
        let levels = lim_core::SearchLevels::build(&w);
        (w, levels)
    })
}

proptest! {
    /// For random trace seeds, session counts and quants, worker counts
    /// 1–8 agree bit for bit on the deterministic report.
    #[test]
    fn deterministic_for_any_worker_count(
        seed in 0u64..200,
        sessions in 4usize..24,
        workers in 2usize..9,
        quant_ix in 0usize..5,
    ) {
        let (w, levels) = fixture();
        let trace = zipf_trace(w, &TraceConfig {
            seed,
            sessions,
            requests_per_session: 5,
            ..TraceConfig::default()
        });
        let config = ServeConfig::builder().quant(Quant::ALL[quant_ix]).build();
        let mut sequential =
            ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let mut parallel = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let a = sequential.process_trace(&trace, 1).expect("valid trace");
        let b = parallel.process_trace(&trace, workers).expect("valid trace");
        prop_assert_eq!(a.deterministic_view(), b.deterministic_view());
    }

    /// Checkpoint determinism over (seed x trace length x split point x
    /// workers 1-8): restoring a checkpoint taken after any prefix and
    /// replaying the suffix equals replaying the full trace without the
    /// restart.
    #[test]
    fn checkpoint_restore_then_suffix_replay_equals_full_replay(
        seed in 0u64..200,
        sessions in 2usize..12,
        split_index in 0usize..64,
        workers in 1usize..9,
    ) {
        assert_restore_equals_continuous(seed, sessions, split_index, workers);
    }

    /// Acceptance property: under Poisson-arrival Zipf traces with a
    /// bounded queue, the queue/shed/degraded counters and wait-time
    /// percentiles are bit-identical for any worker count and either
    /// shed policy.
    #[test]
    fn admission_counters_deterministic_for_any_worker_count(
        seed in 0u64..200,
        sessions in 4usize..20,
        workers in 2usize..9,
        rate_centirps in 5u32..400,
        queue_depth in 1usize..24,
        degrade in 0usize..2,
    ) {
        let (w, levels) = fixture();
        let trace = zipf_trace(w, &TraceConfig {
            seed,
            sessions,
            requests_per_session: 5,
            arrivals: ArrivalProcess::Poisson { rate_rps: rate_centirps as f64 / 100.0 },
            ..TraceConfig::default()
        });
        let config = ServeConfig::builder().admission(AdmissionConfig {
            queue_depth,
            servers: 1,
            shed_policy: if degrade == 1 { ShedPolicy::Degrade } else { ShedPolicy::Reject },
        }).build();
        let mut sequential =
            ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let mut parallel = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let a = sequential.process_trace(&trace, 1).expect("valid trace");
        let b = parallel.process_trace(&trace, workers).expect("valid trace");
        prop_assert_eq!(a.admission.clone(), b.admission.clone());
        prop_assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}

/// The PR 4 acceptance test, explicit worker counts: a Poisson-overload
/// replay is bit-identical (admission section included) for workers
/// {1, 4, 8}, sheds under overload, and sheds nothing under the PR 3
/// back-to-back baseline trace.
#[test]
fn admission_bit_identical_across_workers_and_sheds_only_under_overload() {
    let admission = AdmissionConfig {
        queue_depth: 8,
        servers: 1,
        shed_policy: ShedPolicy::Reject,
    };
    let overloaded = |workers: usize| -> ServeReport {
        let (w, trace) = bfcl_trace(120, 7, 48);
        // Mean service is a few simulated seconds; 25 rps is far past a
        // single simulated executor's capacity.
        let trace = trace.with_arrivals(ArrivalProcess::Poisson { rate_rps: 25.0 });
        let config = ServeConfig::builder().admission(admission).build();
        let mut engine = ServeEngine::new(w, model(), config);
        engine.process_trace(&trace, workers).expect("valid trace")
    };
    let baseline = overloaded(1);
    for workers in [4, 8] {
        let other = overloaded(workers);
        assert_eq!(
            baseline.deterministic_view(),
            other.deterministic_view(),
            "workers={workers}"
        );
        assert_eq!(baseline.admission, other.admission);
    }
    assert!(
        baseline.admission.shed > 0,
        "a 25 rps storm against one simulated executor must shed"
    );
    assert!(baseline.admission.max_queue_depth > 0);
    assert!(baseline.admission.queue_wait.p95_s > 0.0);
    assert_eq!(
        baseline.admission.admitted + baseline.admission.shed,
        baseline.requests as u64
    );

    // The PR 3 baseline trace is back-to-back: the same bounded queue
    // never builds depth, waits or sheds.
    let (w, trace) = bfcl_trace(120, 7, 48);
    let config = ServeConfig::builder().admission(admission).build();
    let mut engine = ServeEngine::new(w, model(), config);
    let calm = engine.process_trace(&trace, 4).expect("valid trace");
    assert_eq!(calm.admission.shed, 0);
    assert_eq!(calm.admission.degraded, 0);
    assert_eq!(calm.admission.max_queue_depth, 0);
    assert_eq!(calm.admission.queue_wait.max_s, 0.0);
}

/// Shed requests count as failures; the accuracy gap vs the unshed
/// replay is exactly the shed share, and the latency distribution only
/// covers executed requests.
#[test]
fn shedding_pays_accuracy_and_is_visible_in_the_report() {
    let (w, trace) = bfcl_trace(80, 3, 24);
    let trace = trace.with_arrivals(ArrivalProcess::Poisson { rate_rps: 40.0 });
    let open_loop = ServeConfig::default(); // queue disabled
    let bounded = ServeConfig::builder()
        .admission(AdmissionConfig {
            queue_depth: 4,
            servers: 1,
            shed_policy: ShedPolicy::Reject,
        })
        .build();
    let mut a = ServeEngine::new(w.clone(), model(), open_loop);
    let mut b = ServeEngine::new(w, model(), bounded);
    let unshed = a.process_trace(&trace, 2).expect("valid trace");
    let shed = b.process_trace(&trace, 2).expect("valid trace");
    assert_eq!(unshed.admission.shed, 0, "disabled queue never sheds");
    assert!(shed.admission.shed > 0);
    assert!(
        shed.success_rate < unshed.success_rate,
        "shed requests are failed requests"
    );
    // Level shares cover executed requests only: they sum to the
    // admitted fraction.
    let n = shed.requests as f64;
    let shares = shed.level1_share + shed.level2_share + shed.level3_share;
    let admitted_fraction = shed.admission.admitted as f64 / n;
    assert!(
        (shares - admitted_fraction).abs() < 1e-9,
        "shares {shares} vs admitted fraction {admitted_fraction}"
    );
}

/// Under the degrade policy a storm is absorbed by Level-3 /
/// selection-free service: degraded requests show up in the counters and
/// in `level3_share`, and fewer requests are shed than under reject.
#[test]
fn degrade_policy_absorbs_pressure_before_shedding() {
    let run = |shed_policy: ShedPolicy| -> ServeReport {
        let (w, trace) = bfcl_trace(80, 9, 24);
        let trace = trace.with_arrivals(ArrivalProcess::Burst {
            rate_rps: 20.0,
            burst: 16,
        });
        let config = ServeConfig::builder()
            .admission(AdmissionConfig {
                queue_depth: 12,
                servers: 1,
                shed_policy,
            })
            .build();
        let mut engine = ServeEngine::new(w, model(), config);
        engine.process_trace(&trace, 2).expect("valid trace")
    };
    let rejecting = run(ShedPolicy::Reject);
    let degrading = run(ShedPolicy::Degrade);
    assert_eq!(rejecting.admission.degraded, 0);
    assert!(degrading.admission.degraded > 0);
    assert!(
        degrading.admission.shed <= rejecting.admission.shed,
        "degrade shed {} vs reject shed {}",
        degrading.admission.shed,
        rejecting.admission.shed
    );
    assert!(
        degrading.level3_share > rejecting.level3_share,
        "degraded requests are served at Level 3"
    );
}

// ---------------------------------------------------------------------
// Streaming ingestion (ServeSession) vs the batch replay path.
// ---------------------------------------------------------------------

/// Replays `trace` through a [`crate::ServeSession`], submitting one
/// request at a time and draining between every two submissions — the
/// maximally fragmented batching the incremental API allows.
fn stream_one_at_a_time(
    engine: &mut ServeEngine,
    trace: &SessionTrace,
    workers: usize,
) -> ServeReport {
    use crate::{StreamMeta, StreamRequest};
    let arrivals = trace.arrival_seconds();
    let mut stream = engine.begin_stream(
        StreamMeta {
            trace_seed: trace.seed,
            zipf_s: trace.zipf_s,
            arrivals: trace.arrivals,
            sessions: Some(trace.sessions.len()),
        },
        workers,
    );
    let mut next = 0usize;
    for session in &trace.sessions {
        for &query_index in &session.query_indices {
            stream
                .submit(StreamRequest {
                    session: session.id,
                    query_index,
                    arrival_s: arrivals.as_ref().map(|a| a[next]),
                })
                .expect("valid request");
            next += 1;
            stream.drain();
        }
    }
    stream.finish()
}

/// Explicit acceptance check at the CI gate's worker counts: a Poisson
/// storm against a bounded Degrade queue, submitted one request at a
/// time, reproduces the batch report bit for bit at workers {1, 4, 8} —
/// and the storm actually sheds *and* degrades, so the equivalence
/// covers the admission paths, not just the happy path. The streamed
/// run honors the trace's recorded timestamps (no re-stamping), which
/// is what makes the two timelines comparable at all.
#[test]
fn streamed_poisson_storm_matches_batch_and_exercises_shed_and_degrade() {
    let (w, trace) = bfcl_trace(80, 3, 24);
    let trace = trace.with_arrivals(ArrivalProcess::Poisson { rate_rps: 40.0 });
    let config = ServeConfig::builder()
        .admission(AdmissionConfig {
            queue_depth: 6,
            servers: 1,
            shed_policy: ShedPolicy::Degrade,
        })
        .build();
    let mut batch_engine = ServeEngine::new(w.clone(), model(), config);
    let batch = batch_engine.process_trace(&trace, 4).expect("valid trace");
    assert!(batch.admission.shed > 0, "storm must shed");
    assert!(batch.admission.degraded > 0, "storm must degrade");
    for workers in [1usize, 4, 8] {
        let mut engine = ServeEngine::new(w.clone(), model(), config);
        let streamed = stream_one_at_a_time(&mut engine, &trace, workers);
        assert_eq!(
            batch.deterministic_view(),
            streamed.deterministic_view(),
            "workers={workers}"
        );
        assert_eq!(batch.admission, streamed.admission, "workers={workers}");
    }
}

/// The event stream is coherent: every submitted ticket resolves exactly
/// once across `drain` and `finish_with_events`, shed events carry no
/// service time and executed ones do.
#[test]
fn stream_events_resolve_every_ticket_exactly_once() {
    use crate::admission::Disposition;
    use crate::{StreamMeta, StreamRequest};
    let (w, trace) = bfcl_trace(60, 9, 12);
    let trace = trace.with_arrivals(ArrivalProcess::Poisson { rate_rps: 30.0 });
    let config = ServeConfig::builder()
        .admission(AdmissionConfig {
            queue_depth: 4,
            servers: 1,
            shed_policy: ShedPolicy::Reject,
        })
        .build();
    let mut engine = ServeEngine::new(w, model(), config);
    let arrivals = trace.arrival_seconds().expect("timed trace");
    let mut stream = engine.begin_stream(
        StreamMeta {
            trace_seed: trace.seed,
            zipf_s: trace.zipf_s,
            arrivals: trace.arrivals,
            sessions: Some(trace.sessions.len()),
        },
        2,
    );
    let mut events = Vec::new();
    let mut next = 0usize;
    for s in &trace.sessions {
        for &q in &s.query_indices {
            stream
                .submit(StreamRequest {
                    session: s.id,
                    query_index: q,
                    arrival_s: Some(arrivals[next]),
                })
                .expect("valid request");
            next += 1;
            events.extend(stream.drain());
        }
    }
    let (report, tail) = stream.finish_with_events();
    events.extend(tail);
    assert_eq!(events.len(), trace.requests());
    let mut resolved = vec![0usize; trace.requests()];
    for event in &events {
        resolved[event.ticket.index()] += 1;
        match event.disposition {
            Disposition::Shed => assert!(event.service_s.is_none(), "shed never executes"),
            _ => assert!(event.service_s.expect("admitted requests bill time") > 0.0),
        }
    }
    assert!(
        resolved.iter().all(|&n| n == 1),
        "every ticket resolves exactly once"
    );
    assert_eq!(report.requests, trace.requests());
    assert!(report.admission.shed > 0, "the storm should shed");
}

/// Streaming validation matches the batch path's: out-of-pool queries,
/// timestamps on closed-loop streams, missing timestamps on open-loop
/// streams and decreasing timestamps are all rejected at submit time.
#[test]
fn stream_submit_validates_requests() {
    use crate::{StreamMeta, StreamRequest};
    let w = lim_workloads::bfcl(5, 30);
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    // Closed loop: timestamps are forbidden, pool bounds enforced.
    let mut stream = engine.begin_stream(StreamMeta::default(), 1);
    let closed = |query_index, arrival_s| StreamRequest {
        session: 0,
        query_index,
        arrival_s,
    };
    assert!(stream.submit(closed(999, None)).is_err());
    assert!(stream.submit(closed(0, Some(1.0))).is_err());
    assert!(stream.submit(closed(0, None)).is_ok());
    let report = stream.finish();
    assert_eq!(report.requests, 1);
    // Open loop: timestamps required and nondecreasing.
    let meta = StreamMeta {
        arrivals: ArrivalProcess::Poisson { rate_rps: 1.0 },
        ..StreamMeta::default()
    };
    let mut stream = engine.begin_stream(meta, 1);
    assert!(stream.submit(closed(0, None)).is_err());
    assert!(stream.submit(closed(0, Some(2.0))).is_ok());
    assert!(stream.submit(closed(1, Some(1.0))).is_err());
    let report = stream.finish();
    assert_eq!(report.requests, 1);
}

proptest! {
    /// The tentpole acceptance property: for random seeds and session
    /// counts, submitting a trace one request at a time through
    /// `ServeSession` (draining between every two submissions) produces
    /// a report bit-identical to the batch `process_trace` path at
    /// workers {1, 4, 8} — including shed/degrade accounting when a
    /// Poisson storm drives a bounded Degrade queue.
    #[test]
    fn streamed_equals_batch_for_any_seed_sessions_and_workers(
        seed in 0u64..200,
        sessions in 2usize..16,
        workers_ix in 0usize..3,
        storm in 0usize..2,
    ) {
        let workers = [1usize, 4, 8][workers_ix];
        let (w, levels) = fixture();
        let mut trace = zipf_trace(w, &TraceConfig {
            seed,
            sessions,
            requests_per_session: 5,
            ..TraceConfig::default()
        });
        let mut builder = ServeConfig::builder();
        if storm == 1 {
            trace = trace.with_arrivals(ArrivalProcess::Poisson { rate_rps: 20.0 });
            builder = builder.admission(AdmissionConfig {
                queue_depth: 6,
                servers: 1,
                shed_policy: ShedPolicy::Degrade,
            });
        }
        let config = builder.build();
        let mut batch = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let mut incremental =
            ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let a = batch.process_trace(&trace, workers).expect("valid trace");
        let b = stream_one_at_a_time(&mut incremental, &trace, workers);
        prop_assert_eq!(a.deterministic_view(), b.deterministic_view());
        prop_assert_eq!(a.admission.clone(), b.admission.clone());
    }
}

// ---------------------------------------------------------------------
// Live catalogs: register/retire on a running engine.
// ---------------------------------------------------------------------

use lim_workloads::churn::{synthetic_tool, with_churn, ChurnConfig};

/// Unit behaviour of the mutation API: epoch bookkeeping, counter
/// accounting, the catalog log, and typed rejection of invalid
/// mutations — none of which may move state when refused.
#[test]
fn register_and_retire_mutate_the_live_engine() {
    let (w, trace) = bfcl_trace(40, 11, 10);
    let base_tools = w.registry.len();
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    engine.process_trace(&trace, 2).expect("warm up");
    assert_eq!(engine.epoch(), 0);
    assert_eq!(engine.catalog_log().len(), 0);

    let doc = synthetic_tool(1, 0);
    let index = engine.register_tool(&doc).expect("register");
    assert_eq!(
        index, base_tools,
        "dense index right after the base catalog"
    );
    assert_eq!(engine.epoch(), 1);
    // Duplicate names and invalid documents are refused without moving
    // the epoch.
    assert!(engine.register_tool(&doc).is_err());
    assert!(engine
        .register_tool(&lim_tools::ToolDoc::new("", "c", "d"))
        .is_err());
    assert_eq!(engine.epoch(), 1);

    engine.retire_tool(index).expect("retire");
    assert_eq!(engine.epoch(), 2);
    assert!(engine.retire_tool(index).is_err(), "double retire");
    assert!(engine.retire_tool(99_999).is_err(), "out of range");
    assert_eq!(engine.epoch(), 2);

    let counters = engine.catalog_counters();
    assert_eq!(counters.registered, 1);
    assert_eq!(counters.retired, 1);
    assert_eq!(engine.catalog_log().len(), 2);
    assert!(
        counters.memo_invalidations > 0,
        "a warm memo crossed two epoch bumps"
    );

    // The catalog section of the next report mirrors the live state.
    let report = engine.process_trace(&trace, 2).expect("replay");
    assert_eq!(report.catalog.epoch, 2);
    assert_eq!(report.catalog.registered, 1);
    assert_eq!(report.catalog.retired, 1);
}

/// The epoch keying contract: mutating the catalog must not poison warm
/// answers — the engine re-misses once per epoch and then reconverges —
/// and a mutation never changes accuracy on queries whose gold tools
/// stay live.
#[test]
fn epoch_bump_invalidates_stale_cache_entries_without_a_flush() {
    let (w, trace) = bfcl_trace(60, 5, 16);
    let mut engine = ServeEngine::new(w, model(), ServeConfig::default());
    let cold = engine.process_trace(&trace, 2).expect("cold");
    let warm = engine.process_trace(&trace, 2).expect("warm");
    assert_eq!(warm.embed_cache.misses, 0, "fully warm before the mutation");

    engine
        .register_tool(&synthetic_tool(2, 0))
        .expect("register");
    let churned = engine.process_trace(&trace, 2).expect("after mutation");
    // Stale-by-key: every unique query re-misses exactly once under the
    // new epoch (no flush, so the *old* entries are still resident until
    // LRU pressure evicts them)…
    assert!(churned.embed_cache.misses > 0, "epoch bump must re-miss");
    // …and outcomes on the untouched gold catalog are unchanged.
    assert_eq!(cold.success_rate, churned.success_rate);
    assert_eq!(cold.tool_accuracy, churned.tool_accuracy);

    let again = engine.process_trace(&trace, 2).expect("reconverged");
    assert_eq!(
        again.embed_cache.misses, 0,
        "warm again under the new epoch"
    );
}

/// Staleness-bounded Level-2 refresh: with the refresh fraction wound
/// down, a single mutation rebuilds the clusters; with the default
/// fraction a small mutation burst does not.
#[test]
fn cluster_refresh_fires_once_churn_exceeds_the_configured_fraction() {
    let (w, trace) = bfcl_trace(40, 11, 10);
    let eager = ServeConfig::builder()
        .cluster_refresh_fraction(0.01)
        .build();
    let mut engine = ServeEngine::new(w.clone(), model(), eager);
    engine
        .register_tool(&synthetic_tool(3, 0))
        .expect("register");
    assert_eq!(engine.catalog_counters().cluster_refreshes, 1);
    let report = engine.process_trace(&trace, 2).expect("replay");
    assert_eq!(report.catalog.cluster_refreshes, 1);

    let mut lazy = ServeEngine::new(w, model(), ServeConfig::default());
    lazy.register_tool(&synthetic_tool(3, 0)).expect("register");
    lazy.register_tool(&synthetic_tool(3, 1)).expect("register");
    assert_eq!(
        lazy.catalog_counters().cluster_refreshes,
        0,
        "two mutations stay under the default quarter-catalog bound"
    );
}

/// The churn acceptance gate, in-process: a seeded churn trace replays
/// bit-identically (catalog section included) at workers {1, 4, 8}, and
/// accuracy on the live gold catalog never falls below the static
/// baseline — churn only ever retires gold-safe tools.
#[test]
fn churned_replay_is_bit_identical_across_workers_and_keeps_accuracy() {
    let (w, trace) = bfcl_trace(120, 7, 48);
    let churned = with_churn(&w, trace.clone(), &ChurnConfig::default());
    assert!(!churned.churn.is_empty());
    let run = |workers: usize| {
        let mut engine = ServeEngine::new(w.clone(), model(), ServeConfig::default());
        engine
            .process_trace(&churned, workers)
            .expect("churned replay")
    };
    let baseline = run(1);
    for workers in [4, 8] {
        let other = run(workers);
        assert_eq!(
            baseline.deterministic_view(),
            other.deterministic_view(),
            "workers={workers}"
        );
        assert_eq!(baseline.catalog, other.catalog, "workers={workers}");
    }
    assert!(baseline.catalog.epoch > 0);
    assert!(baseline.catalog.registered > 0);
    assert!(baseline.catalog.retired > 0);

    let mut static_engine = ServeEngine::new(w.clone(), model(), ServeConfig::default());
    let static_report = static_engine.process_trace(&trace, 1).expect("static");
    assert!(
        baseline.success_rate >= static_report.success_rate,
        "churn {:.4} vs static {:.4}: gold-safe churn must not lose accuracy",
        baseline.success_rate,
        static_report.success_rate
    );
}

/// The snapshot convergence contract: (A) a live engine that churned,
/// (B) a checkpoint restore of it, and (C) a snapshot-booted engine that
/// replays the same churn trace all converge — reports at tolerance 0
/// and checkpoints to the byte.
#[test]
fn mutate_then_snapshot_equals_boot_then_replay_log() {
    let (w, trace) = bfcl_trace(60, 5, 16);
    let churned = with_churn(
        &w,
        trace,
        &ChurnConfig {
            seed: 3,
            registers: 3,
            retires: 3,
        },
    );
    let config = ServeConfig::default();

    // A: the engine that lived through the churn.
    let mut live = ServeEngine::new(w.clone(), model(), config);
    let report_a = live.process_trace(&churned, 4).expect("A");
    assert!(report_a.catalog.epoch > 0);
    let ck_a = live.checkpoint();
    assert_eq!(ck_a, live.checkpoint(), "checkpointing is byte-stable");

    // B: restore the churned checkpoint. Same epoch, same bytes back
    // out, and the future is served identically at another worker count.
    let snapshot = Snapshot::parse(&ck_a).expect("valid checkpoint");
    let mut restored =
        ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), config).expect("restore");
    assert_eq!(restored.epoch(), live.epoch());
    assert_eq!(restored.catalog_counters(), live.catalog_counters());
    assert_eq!(
        restored.checkpoint(),
        ck_a,
        "restore round-trips to the byte"
    );
    let future = zipf_trace(
        &w,
        &TraceConfig {
            seed: 99,
            sessions: 8,
            requests_per_session: 5,
            ..TraceConfig::default()
        },
    );
    let expected = live.process_trace(&future, 1).expect("live future");
    let actual = restored.process_trace(&future, 8).expect("restored future");
    assert_eq!(expected.deterministic_view(), actual.deterministic_view());

    // C: boot from a *base* levels snapshot (no churn recorded), replay
    // the same churn trace, and converge with A bit-for-bit.
    let levels_bytes = lim_core::write_levels_snapshot(
        &lim_core::SearchLevels::build(&w),
        "bfcl",
        5,
        w.queries.len(),
    );
    let levels_snapshot = Snapshot::parse(&levels_bytes).expect("valid snapshot");
    let mut from_base = ServeEngine::from_snapshot(&levels_snapshot, w.clone(), model(), config)
        .expect("snapshot boot");
    let report_c = from_base.process_trace(&churned, 8).expect("C");
    assert_eq!(report_a.deterministic_view(), report_c.deterministic_view());
    assert_eq!(
        from_base.checkpoint(),
        ck_a,
        "mutate-then-snapshot equals boot-then-mutate, to the byte"
    );
}

/// Re-encodes a checkpoint with its `catalog_log` section tampered by
/// `mutate` — the corrupt-log rejection fixtures below all go through
/// this.
fn tampered_catalog_checkpoint(
    snapshot: &Snapshot,
    mutate: impl Fn(&mut lim_json::Value),
) -> Vec<u8> {
    let mut writer = lim_core::SnapshotWriter::new("checkpoint");
    for key in ["benchmark", "tool_count", "pool_size", "train_size", "dim"] {
        writer.header_field(
            key,
            snapshot.header_field(key).expect("header field").clone(),
        );
    }
    for name in crate::snapshot::KNOWN_SECTIONS {
        if snapshot.section_len(name).is_some() {
            let mut doc = snapshot.section(name).expect("section decodes").clone();
            if *name == crate::snapshot::SECTION_CATALOG {
                mutate(&mut doc);
            }
            writer.add_section(name, &doc);
        }
    }
    writer.encode()
}

/// Corrupt, reordered or inconsistent catalog logs are refused with
/// typed [`SnapshotError`]s — a damaged log must never replay into a
/// silently different catalog.
#[test]
fn corrupt_or_unordered_catalog_logs_are_rejected() {
    use lim_json::Value;
    let (w, trace) = bfcl_trace(40, 11, 10);
    let churned = with_churn(
        &w,
        trace,
        &ChurnConfig {
            seed: 1,
            registers: 2,
            retires: 2,
        },
    );
    let config = ServeConfig::default();
    let mut engine = ServeEngine::new(w.clone(), model(), config);
    engine.process_trace(&churned, 2).expect("churned replay");
    assert!(engine.epoch() >= 2);
    let bytes = engine.checkpoint();
    let snapshot = Snapshot::parse(&bytes).expect("valid checkpoint");

    // The untampered re-encode restores fine (the harness itself is
    // sound — rejections below are the tamper, not the rebuild).
    let clean = tampered_catalog_checkpoint(&snapshot, |_| {});
    let reparsed = Snapshot::parse(&clean).expect("clean re-encode parses");
    ServeEngine::from_checkpoint(&reparsed, w.clone(), model(), config)
        .expect("clean re-encode restores");

    let reject = |label: &str, needle: &str, mutate: &dyn Fn(&mut Value)| {
        let bytes = tampered_catalog_checkpoint(&snapshot, mutate);
        let tampered = Snapshot::parse(&bytes).expect("tampered file still parses");
        let err = ServeEngine::from_checkpoint(&tampered, w.clone(), model(), config)
            .expect_err(&format!("{label} must be refused"));
        match &err {
            SnapshotError::Section { section, message } => {
                assert_eq!(section, crate::snapshot::SECTION_CATALOG, "{label}");
                assert!(message.contains(needle), "{label}: {message}");
            }
            other => panic!("{label}: expected a Section error, got {other:?}"),
        }
    };

    let records_of = |doc: &Value| -> Vec<Value> {
        doc.get("records")
            .and_then(Value::as_array)
            .expect("records")
            .to_vec()
    };
    // Reordered log: swapping two records breaks seq contiguity.
    reject("reordered log", "contiguous", &|doc| {
        let mut records = records_of(doc);
        records.swap(0, 1);
        doc.insert("records", records.into_iter().collect());
    });
    // Truncated log: dropping the last record disagrees with the epoch.
    reject("truncated log", "disagree", &|doc| {
        let mut records = records_of(doc);
        records.pop();
        doc.insert("records", records.into_iter().collect());
    });
    // Epoch coherence inside one record.
    reject("incoherent record epoch", "bumps", &|doc| {
        let mut records = records_of(doc);
        records[0].insert("epoch_after", Value::from(7));
        doc.insert("records", records.into_iter().collect());
    });
    // Lifetime counters disagreeing with the log.
    reject("counter mismatch", "counters", &|doc| {
        let counters = doc.get("counters").expect("counters").clone();
        let mut counters = counters;
        counters.insert("registered", Value::from(99));
        doc.insert("counters", counters);
    });
    // A retire aimed at a tool the log never had at that point.
    reject(
        "retire out of replay range",
        "invalid or repeated",
        &|doc| {
            let mut records = records_of(doc);
            for record in &mut records {
                if record.get("op").and_then(Value::as_str) == Some("retire") {
                    record.insert("id", Value::from(99_999));
                    break;
                }
            }
            doc.insert("records", records.into_iter().collect());
        },
    );
    // Structurally missing members.
    reject("missing records", "missing records", &|doc| {
        doc.insert("records", Value::Null);
    });
    reject("negative epoch", "epoch", &|doc| {
        doc.insert("epoch", Value::from(-1));
    });
}

proptest! {
    /// The churn acceptance property: for random trace seeds, churn
    /// schedules and worker counts, a churned replay is bit-identical
    /// to the sequential replay (catalog counters included), and the
    /// checkpoint it leaves behind restores to byte-identical state —
    /// live mutation equals snapshot-boot plus catalog-log replay.
    #[test]
    fn churned_replay_deterministic_and_checkpoint_convergent(
        seed in 0u64..100,
        churn_seed in 0u64..100,
        registers in 0usize..4,
        retires in 0usize..4,
        workers_ix in 0usize..3,
    ) {
        let workers = [1usize, 4, 8][workers_ix];
        let (w, levels) = fixture();
        let trace = zipf_trace(w, &TraceConfig {
            seed,
            sessions: 6,
            requests_per_session: 4,
            ..TraceConfig::default()
        });
        let churned = with_churn(w, trace, &ChurnConfig {
            seed: churn_seed,
            registers,
            retires,
        });
        let config = ServeConfig::default();
        let mut sequential =
            ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let mut parallel = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let a = sequential.process_trace(&churned, 1).expect("sequential");
        let b = parallel.process_trace(&churned, workers).expect("parallel");
        prop_assert_eq!(a.deterministic_view(), b.deterministic_view());
        prop_assert_eq!(a.catalog.clone(), b.catalog.clone());

        let ck = sequential.checkpoint();
        let snapshot = Snapshot::parse(&ck).expect("parse checkpoint");
        let restored = ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), config)
            .expect("restore churned checkpoint");
        prop_assert_eq!(restored.checkpoint(), ck);
    }
}

// ---------------------------------------------------------------------
// Fleet tenancy: N isolated catalogs in one engine (FleetEngine).
// ---------------------------------------------------------------------

use crate::{FleetConfig, FleetEngine, FleetSubmitError, StreamMeta, StreamRequest};
use std::sync::Arc;

/// A multi-tenant trace over the shared fixture workload.
fn fleet_trace(
    tenants: usize,
    tenant_skew: f64,
    seed: u64,
    sessions: usize,
    arrivals: ArrivalProcess,
) -> SessionTrace {
    let (w, _) = fixture();
    zipf_trace(
        w,
        &TraceConfig {
            seed,
            sessions,
            requests_per_session: 5,
            arrivals,
            tenants,
            tenant_skew,
            ..TraceConfig::default()
        },
    )
}

/// A fleet over the shared fixture levels — one COW `SearchLevels`
/// shared by every tenant, exactly like the CLI's shared-build boot.
fn fleet_with(config: FleetConfig) -> FleetEngine {
    let (w, levels) = fixture();
    FleetEngine::with_shared(
        Arc::new(w.clone()),
        Arc::new(levels.clone()),
        model(),
        config,
    )
    .expect("valid fleet config")
}

fn fleet_for(tenants: usize, base: ServeConfig) -> FleetEngine {
    fleet_with(FleetConfig::new(tenants, base))
}

/// The N=1 equivalence gate: a one-tenant fleet is the single-tenant
/// engine — same aggregate report bit for bit (tolerance 0), same
/// per-tenant breakdown, and tenant 0 holds the entire cache budget.
#[test]
fn single_tenant_fleet_is_bit_identical_to_standalone_engine() {
    let trace = fleet_trace(1, 1.0, 21, 12, ArrivalProcess::BackToBack);
    let config = ServeConfig::default();
    let mut fleet = fleet_for(1, config);
    let fleet_report = fleet.process_trace(&trace, 4).expect("fleet replay");

    let (w, levels) = fixture();
    let mut solo = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
    let solo_report = solo.process_trace(&trace, 4).expect("solo replay");

    assert_eq!(
        fleet_report.overall.deterministic_view(),
        solo_report.deterministic_view(),
        "a one-tenant fleet must not perturb the single-engine numbers"
    );
    assert_eq!(fleet_report.tenants.len(), 1);
    let t0 = &fleet_report.tenants[0];
    assert_eq!(t0.tenant, 0);
    assert_eq!(
        t0.report.deterministic_view(),
        solo_report.deterministic_view()
    );
    // The sole tenant owns the whole budget; its floor is the clamped
    // quarter-share.
    assert_eq!(t0.embed_capacity, config.embed_cache_capacity);
    assert_eq!(t0.memo_capacity, config.memo_capacity);
    assert_eq!(t0.embed_floor, fleet.config().effective_embed_floor());
}

/// Chopping a fleet stream one request at a time — draining between
/// every two submissions — reproduces the batch replay bit for bit, and
/// emits exactly one event per request across the chop points.
#[test]
fn fleet_stream_chopped_per_request_matches_batch_replay() {
    let trace = fleet_trace(3, 1.2, 33, 10, ArrivalProcess::BackToBack);
    let mut batch = fleet_for(3, ServeConfig::default());
    let expected = batch.process_trace(&trace, 2).expect("batch replay");

    let mut fleet = fleet_for(3, ServeConfig::default());
    let mut stream = fleet.begin_stream(
        StreamMeta {
            trace_seed: trace.seed,
            zipf_s: trace.zipf_s,
            arrivals: trace.arrivals,
            sessions: Some(trace.sessions.len()),
        },
        2,
    );
    let mut events = 0usize;
    for session in &trace.sessions {
        for &query_index in &session.query_indices {
            stream
                .submit(
                    session.tenant,
                    StreamRequest {
                        session: session.id,
                        query_index,
                        arrival_s: None,
                    },
                )
                .expect("valid request");
            events += stream.drain().len();
        }
    }
    let (report, tail) = stream.finish_with_events();
    events += tail.len();
    assert_eq!(events, trace.requests(), "one event per request");
    assert_eq!(report.deterministic_view(), expected.deterministic_view());
}

/// A request naming a tenant the fleet does not serve is refused with
/// the typed error — and the stream *survives*: the very next valid
/// submission is accepted and counted. This is the library-level
/// contract behind the wire front-end's non-fatal `error` frame.
#[test]
fn unknown_tenant_submission_is_typed_and_does_not_kill_the_stream() {
    let mut fleet = fleet_for(2, ServeConfig::default());
    let mut stream = fleet.begin_stream(
        StreamMeta {
            trace_seed: 1,
            zipf_s: 1.0,
            arrivals: ArrivalProcess::BackToBack,
            sessions: None,
        },
        1,
    );
    let err = stream
        .submit(
            9,
            StreamRequest {
                session: 1,
                query_index: 0,
                arrival_s: None,
            },
        )
        .expect_err("tenant 9 of 2 must be refused");
    assert!(
        matches!(
            err,
            FleetSubmitError::UnknownTenant {
                tenant: 9,
                tenants: 2
            }
        ),
        "{err:?}"
    );
    assert_eq!(err.to_string(), "unknown tenant 9 (fleet serves 0..2)");
    stream
        .submit(
            0,
            StreamRequest {
                session: 1,
                query_index: 0,
                arrival_s: None,
            },
        )
        .expect("the stream keeps accepting after a refused tenant");
    let report = stream.finish();
    assert_eq!(report.overall.requests, 1);
    assert_eq!(report.tenants[0].report.requests, 1);
    assert_eq!(report.tenants[1].report.requests, 0);
}

/// The isolation battery: a hot tenant drawing ~an order of magnitude
/// more traffic than a cold one, under a Poisson storm against a
/// bounded Reject queue, cannot
///   1. push the cold tenant's cache slices below the QoS floors, nor
///   2. push the cold tenant's shed count above the single-tenant
///      baseline (the *same* sub-trace replayed on a dedicated engine).
#[test]
fn hot_tenant_cannot_starve_cold_tenant_caches_or_shed_budget() {
    let (w, levels) = fixture();
    let trace = fleet_trace(2, 3.5, 71, 24, ArrivalProcess::Poisson { rate_rps: 2.0 });
    let per_tenant = |t: u64| {
        trace
            .sessions
            .iter()
            .filter(|s| s.tenant == t)
            .map(|s| s.query_indices.len())
            .sum::<usize>()
    };
    let (hot_requests, cold_requests) = (per_tenant(0), per_tenant(1));
    assert!(
        hot_requests >= 5 * cold_requests.max(1),
        "skew 3.5 must make tenant 0 dominate: {hot_requests} vs {cold_requests}"
    );

    let base = ServeConfig::builder()
        .admission(AdmissionConfig {
            queue_depth: 6,
            servers: 1,
            shed_policy: ShedPolicy::Reject,
        })
        .build();
    let mut fleet = fleet_for(2, base);
    let report = fleet.process_trace(&trace, 4).expect("fleet replay");
    let hot = &report.tenants[0];
    let cold = &report.tenants[1];

    // The storm is real: the hot tenant overruns *its own* queue bound.
    assert!(
        hot.report.admission.shed > 0,
        "the hot tenant must shed under this storm (got {:?})",
        hot.report.admission
    );

    // (1) Cache floors: traffic-weighted rebalancing can shrink the cold
    // tenant's slices, but never below the guaranteed minimum — and the
    // hot tenant is the one the spare flows to.
    let fc = fleet.config();
    assert!(cold.embed_capacity >= fc.effective_embed_floor());
    assert!(cold.memo_capacity >= fc.effective_memo_floor());
    assert_eq!(cold.embed_floor, fc.effective_embed_floor());
    assert!(
        hot.embed_capacity > cold.embed_capacity,
        "spare capacity must follow traffic: hot {} vs cold {}",
        hot.embed_capacity,
        cold.embed_capacity
    );

    // (2) Shed budget: the cold tenant does no worse than it would on a
    // dedicated single-tenant engine replaying its own sub-trace.
    let solo_trace = trace.tenant_subtrace(1);
    assert_eq!(solo_trace.requests(), cold_requests);
    let mut solo = ServeEngine::with_levels(w.clone(), levels.clone(), model(), base);
    let solo_report = solo.process_trace(&solo_trace, 4).expect("solo replay");
    assert!(
        cold.report.admission.shed <= solo_report.admission.shed,
        "fleet must not shed more cold-tenant requests ({}) than the \
         dedicated baseline ({})",
        cold.report.admission.shed,
        solo_report.admission.shed
    );
}

/// A restored fleet is *warm*: replaying the very trace that produced a
/// checkpoint costs zero embedding-cache and zero memo misses, for the
/// aggregate and for every tenant.
#[test]
fn fleet_checkpoint_boot_replays_with_zero_cache_misses() {
    let trace = fleet_trace(3, 1.5, 41, 9, ArrivalProcess::BackToBack);
    let mut config = FleetConfig::new(3, ServeConfig::default());
    // Pin the partition so the warm replay measures cache state, not a
    // rebalance-induced resize.
    config.rebalance_every = 1 << 20;
    let mut live = fleet_with(config);
    let cold = live.process_trace(&trace, 2).expect("cold replay");
    assert!(cold.overall.embed_cache.misses > 0, "cold replay must miss");

    let bytes = live.checkpoint();
    assert_eq!(
        bytes,
        live.checkpoint(),
        "checkpoints are byte-deterministic"
    );
    let snapshot = Snapshot::parse(&bytes).expect("valid checkpoint");
    let (w, _) = fixture();
    let mut restored =
        FleetEngine::from_checkpoint(&snapshot, w.clone(), model(), config).expect("fleet restore");
    let warm = restored.process_trace(&trace, 2).expect("warm replay");
    assert_eq!(
        warm.overall.embed_cache.misses, 0,
        "warm fleet must not miss"
    );
    assert_eq!(warm.overall.selection_memo.misses, 0);
    for tenant in &warm.tenants {
        assert_eq!(
            tenant.report.embed_cache.misses, 0,
            "tenant {} missed after a warm boot",
            tenant.tenant
        );
    }
    // Accuracy is boot-invariant.
    assert_eq!(cold.overall.success_rate, warm.overall.success_rate);
    assert_eq!(cold.overall.tool_accuracy, warm.overall.tool_accuracy);
}

/// Mid-stream fleet restore: checkpoint after a trace prefix, boot a
/// fresh fleet from the file, and the suffix replays bit-identically to
/// the fleet that never went down — per tenant included.
#[test]
fn fleet_restore_midstream_replays_suffix_bit_identical_to_uninterrupted() {
    let trace = fleet_trace(3, 1.2, 47, 12, ArrivalProcess::BackToBack);
    let (prefix, suffix) = split_trace(&trace, trace.requests() / 2);
    let config = FleetConfig::new(3, ServeConfig::default());

    let mut continuous = fleet_with(config);
    let mut interrupted = fleet_with(config);
    continuous.process_trace(&prefix, 3).expect("prefix");
    interrupted.process_trace(&prefix, 3).expect("prefix");

    let snapshot = Snapshot::parse(&interrupted.checkpoint()).expect("valid checkpoint");
    let (w, _) = fixture();
    let mut restored =
        FleetEngine::from_checkpoint(&snapshot, w.clone(), model(), config).expect("fleet restore");

    let expected = continuous.process_trace(&suffix, 3).expect("suffix");
    let actual = restored.process_trace(&suffix, 3).expect("suffix");
    assert_eq!(expected.deterministic_view(), actual.deterministic_view());
}

/// Re-encodes a fleet checkpoint with optional hostile edits: a
/// replacement `tenants` header, a section-name rewrite, or a
/// duplicated section. The identity rebuild must restore cleanly — the
/// rejections below are the tamper, not the harness.
fn reencoded_fleet_checkpoint(
    snapshot: &Snapshot,
    tenants_header: Option<lim_json::Value>,
    rename: &dyn Fn(&str) -> String,
    duplicate: Option<&str>,
) -> Vec<u8> {
    let mut writer = lim_core::SnapshotWriter::new("checkpoint");
    for key in ["benchmark", "tool_count", "pool_size", "train_size", "dim"] {
        writer.header_field(
            key,
            snapshot.header_field(key).expect("header field").clone(),
        );
    }
    let tenants = tenants_header.unwrap_or_else(|| {
        snapshot
            .header_field("tenants")
            .expect("tenants header")
            .clone()
    });
    writer.header_field("tenants", tenants);
    for name in snapshot.section_names() {
        let doc = snapshot.section(name).expect("section decodes").clone();
        writer.add_section(&rename(name), &doc);
        if duplicate == Some(name) {
            writer.add_section(&rename(name), &doc);
        }
    }
    writer.encode()
}

/// Hostile snapshot inputs fail safe with *typed* errors, in both
/// directions and for every tamper class the fleet header introduces:
/// single-engine files offered to a fleet boot, fleet files offered to
/// a single-engine boot, sections for tenants the header never
/// declared, non-positive tenant headers, tenant-count mismatches, and
/// duplicated sections.
#[test]
fn hostile_fleet_checkpoints_are_rejected_with_typed_errors() {
    let (w, levels) = fixture();
    let keep = |name: &str| name.to_owned();

    // A single-engine checkpoint is not a fleet checkpoint: no tenants
    // header -> SnapshotError::Header, stream-level state untouched.
    let mut single =
        ServeEngine::with_levels(w.clone(), levels.clone(), model(), ServeConfig::default());
    let solo_trace = fleet_trace(1, 1.0, 3, 4, ArrivalProcess::BackToBack);
    single.process_trace(&solo_trace, 1).expect("solo replay");
    let solo_snapshot = Snapshot::parse(&single.checkpoint()).expect("valid checkpoint");
    let err = FleetEngine::from_checkpoint(
        &solo_snapshot,
        w.clone(),
        model(),
        FleetConfig::new(1, ServeConfig::default()),
    )
    .expect_err("a fleet must not boot from a single-engine file");
    assert!(matches!(err, SnapshotError::Header(_)), "{err:?}");

    // Build a real 2-tenant checkpoint to tamper with.
    let trace = fleet_trace(2, 1.0, 4, 6, ArrivalProcess::BackToBack);
    let config = FleetConfig::new(2, ServeConfig::default());
    let mut fleet = fleet_with(config);
    fleet.process_trace(&trace, 1).expect("fleet replay");
    let snapshot = Snapshot::parse(&fleet.checkpoint()).expect("valid checkpoint");

    // The identity rebuild restores — the harness itself is sound.
    let clean = reencoded_fleet_checkpoint(&snapshot, None, &keep, None);
    let reparsed = Snapshot::parse(&clean).expect("clean re-encode parses");
    FleetEngine::from_checkpoint(&reparsed, w.clone(), model(), config)
        .expect("clean re-encode restores");

    // The mirror direction: a fleet file offered to a single-engine
    // boot — its fleet/t{i}.* sections are strangers.
    let err = ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), ServeConfig::default())
        .expect_err("a single engine must not boot from a fleet file");
    assert!(matches!(err, SnapshotError::UnknownSection(_)), "{err:?}");

    // A section for a tenant the header does not declare: t1 -> t9.
    let moved =
        reencoded_fleet_checkpoint(&snapshot, None, &|name| name.replace("t1.", "t9."), None);
    let moved = Snapshot::parse(&moved).expect("tampered file still parses");
    let err = FleetEngine::from_checkpoint(&moved, w.clone(), model(), config)
        .expect_err("out-of-range tenant sections must be refused");
    match &err {
        SnapshotError::UnknownSection(name) => assert!(name.starts_with("t9."), "{name}"),
        other => panic!("expected UnknownSection, got {other:?}"),
    }

    // A non-positive tenants header.
    let zeroed = reencoded_fleet_checkpoint(&snapshot, Some(lim_json::Value::from(0)), &keep, None);
    let zeroed = Snapshot::parse(&zeroed).expect("tampered file still parses");
    let err = FleetEngine::from_checkpoint(&zeroed, w.clone(), model(), config)
        .expect_err("tenants: 0 must be refused");
    assert!(matches!(err, SnapshotError::Header(_)), "{err:?}");

    // A tenant-count disagreement between file and boot config.
    let err = FleetEngine::from_checkpoint(
        &snapshot,
        w.clone(),
        model(),
        FleetConfig::new(3, ServeConfig::default()),
    )
    .expect_err("2-tenant file vs 3-tenant config must be refused");
    assert!(matches!(err, SnapshotError::Mismatch(_)), "{err:?}");

    // Duplicated sections never even parse.
    let doubled =
        reencoded_fleet_checkpoint(&snapshot, None, &keep, Some(crate::snapshot::SECTION_FLEET));
    let err = Snapshot::parse(&doubled).expect_err("duplicate sections must not parse");
    assert!(err.to_string().contains("duplicate"), "{err}");
}

proptest! {
    /// The fleet acceptance property: for random seeds, tenant counts
    /// {1, 3, 8}, traffic skews, Poisson storms and per-tenant churn,
    /// the multi-tenant replay is bit-identical between the sequential
    /// and any parallel worker count — the aggregate *and* every
    /// per-tenant breakdown.
    #[test]
    fn fleet_replay_bit_identical_for_any_worker_count(
        seed in 0u64..50,
        tenants_ix in 0usize..3,
        skew_centi in 0u64..250,
        workers_ix in 0usize..2,
        storm in 0usize..2,
        churn in 0usize..2,
    ) {
        let tenants = [1usize, 3, 8][tenants_ix];
        let workers = [4usize, 8][workers_ix];
        let (w, _) = fixture();
        let arrivals = if storm == 1 {
            ArrivalProcess::Poisson { rate_rps: 8.0 }
        } else {
            ArrivalProcess::BackToBack
        };
        let mut trace = zipf_trace(w, &TraceConfig {
            seed,
            sessions: 8,
            requests_per_session: 4,
            arrivals,
            tenants,
            tenant_skew: skew_centi as f64 / 100.0,
            ..TraceConfig::default()
        });
        if churn == 1 {
            trace = lim_workloads::churn::with_tenant_churn(w, trace, &ChurnConfig {
                seed: seed ^ 0x9e37,
                registers: 2,
                retires: 1,
            });
        }
        let base = if storm == 1 {
            ServeConfig::builder()
                .admission(AdmissionConfig {
                    queue_depth: 4,
                    servers: 1,
                    shed_policy: ShedPolicy::Reject,
                })
                .build()
        } else {
            ServeConfig::default()
        };
        let mut sequential = fleet_for(tenants, base);
        let mut parallel = fleet_for(tenants, base);
        let a = sequential.process_trace(&trace, 1).expect("sequential");
        let b = parallel.process_trace(&trace, workers).expect("parallel");
        prop_assert_eq!(a.deterministic_view(), b.deterministic_view());
        // Requests route to exactly the tenants the trace names.
        let routed: usize = a.tenants.iter().map(|t| t.report.requests).sum();
        prop_assert_eq!(routed, trace.requests());
    }
}

// ---------------------------------------------------------------------
// Energy governor: capped storms, degenerate caps, idle-wait billing,
// and governed determinism across workers and restarts.

/// The acceptance storm: Poisson arrivals at 0.06 rps — arrival-limited
/// against two simulated executors — into a depth-12 degrade queue,
/// served at Q8_0 so the Economy rung (Q8_0 → Q4_K_M, a halved
/// bit-width) has a real joules gap to descend into. The low rate keeps
/// the queue shallow (no degraded floor-catalog spikes) and makes the
/// window-basis draw something the quant ladder can actually steer; a
/// server-limited flood would shed its way to the same sustained watts
/// no matter what the governor does.
fn storm_trace() -> SessionTrace {
    let (w, _) = fixture();
    zipf_trace(
        w,
        &TraceConfig {
            seed: 11,
            sessions: 24,
            requests_per_session: 8,
            arrivals: ArrivalProcess::Poisson { rate_rps: 0.06 },
            ..TraceConfig::default()
        },
    )
}

fn storm_config(power_cap_w: f64) -> ServeConfig {
    ServeConfig::builder()
        .quant(Quant::Q8_0)
        .admission(AdmissionConfig {
            queue_depth: 12,
            servers: 2,
            shed_policy: ShedPolicy::Degrade,
        })
        .governor(GovernorConfig {
            power_cap_w,
            // Long relative to the storm's Poisson clumps, so a burst
            // admitted during an Economy hold cannot swing the average
            // over a cap the all-Economy draw itself respects.
            window_s: 600.0,
            ..GovernorConfig::default()
        })
        .build()
}

fn storm_replay(power_cap_w: f64, workers: usize) -> ServeReport {
    let (w, levels) = fixture();
    let mut engine = ServeEngine::with_levels(
        w.clone(),
        levels.clone(),
        model(),
        storm_config(power_cap_w),
    );
    engine
        .process_trace(&storm_trace(), workers)
        .expect("valid trace")
}

/// Success rate of serving every request of `trace` at the
/// [`lim_core::ServiceLevel::Floor`] rung — the selection-free full
/// catalog, i.e. the always-Level-3 baseline the governed replay must
/// never fall below.
fn always_floor_success_rate(trace: &SessionTrace, config: &ServeConfig) -> f64 {
    let (w, levels) = fixture();
    let profile = model();
    let pipeline = lim_core::Pipeline::new(w, levels, &profile, config.quant)
        .with_seed(config.seed)
        .with_device(config.device.profile());
    let controller = lim_core::ToolController::new(levels, Default::default());
    let selection =
        lim_core::ServicePolicy::actuate(&controller, lim_core::ServiceLevel::Floor, &[]);
    let mut successes = 0usize;
    let mut total = 0usize;
    for session in &trace.sessions {
        for &q in &session.query_indices {
            total += 1;
            let result = pipeline.run_query_offered(
                &w.queries[q],
                &selection.tool_indices,
                lim_core::DEFAULT_CONTEXT,
            );
            if result.success {
                successes += 1;
            }
        }
    }
    successes as f64 / total.max(1) as f64
}

/// The PR acceptance test: a Poisson storm replayed under a power cap
/// set below the uncapped sustained draw (1) completes, (2) keeps the
/// window-basis sustained watts under the cap, (3) actually transitions
/// rungs, (4) never falls below the always-Level-3 accuracy floor, and
/// (5) is bit-identical for workers {1, 4, 8}.
#[test]
fn governed_storm_caps_watts_and_holds_the_accuracy_floor() {
    let uncapped = storm_replay(0.0, 4);
    assert_eq!(uncapped.energy.governor_transitions, 0);
    assert!(
        uncapped.energy.sustained_watts_max > 0.0,
        "the estimator runs even uncapped"
    );

    // 95% of uncapped: below the uncapped peak, above the all-Economy
    // sustained peak. A two-rung quant ladder can only guarantee caps in
    // that band — during an Economy hold there is no cheaper rung left,
    // so arrivals admit unchecked at the Economy rate (see the module
    // docs on `lim_serve::governor` for the compliance-band argument).
    let cap = 0.95 * uncapped.energy.sustained_watts_max;
    let governed = storm_replay(cap, 1);
    for workers in [4, 8] {
        let other = storm_replay(cap, workers);
        assert_eq!(
            governed.deterministic_view(),
            other.deterministic_view(),
            "workers={workers}"
        );
    }

    assert!(
        governed.energy.governor_transitions >= 1,
        "a cap below uncapped draw must actuate (transitions={})",
        governed.energy.governor_transitions
    );
    assert!(
        governed.energy.sustained_watts_max <= cap,
        "sustained {:.3} W must stay under the {:.3} W cap",
        governed.energy.sustained_watts_max,
        cap
    );
    assert!(governed.energy.sustained_watts_max < uncapped.energy.sustained_watts_max);

    // Degrade absorbs the storm: nothing sheds, so `success_rate` is an
    // executed-request accuracy and compares directly to the floor.
    assert_eq!(
        governed.admission.shed, 0,
        "depth-12 degrade queue absorbs this storm"
    );
    let floor = always_floor_success_rate(&storm_trace(), &storm_config(cap));
    assert!(
        governed.success_rate >= floor,
        "governed accuracy {:.4} must not fall below the always-Floor baseline {:.4}",
        governed.success_rate,
        floor
    );
}

/// Degenerate caps (zero, negative, infinite, NaN) normalize to an
/// inactive governor whose replay is *byte*-identical — serialized JSON
/// compared as strings — to the ungoverned engine's.
#[test]
fn degenerate_caps_serve_byte_identically_to_ungoverned() {
    let (w, trace) = bfcl_trace(120, 7, 24);
    let trace = trace.with_arrivals(ArrivalProcess::Poisson { rate_rps: 25.0 });
    let admission = AdmissionConfig {
        queue_depth: 8,
        servers: 1,
        shed_policy: ShedPolicy::Degrade,
    };
    let baseline_config = ServeConfig::builder().admission(admission).build();
    let mut baseline_engine = ServeEngine::new(w.clone(), model(), baseline_config);
    let baseline = baseline_engine
        .process_trace(&trace, 2)
        .expect("valid trace")
        .deterministic_view()
        .to_json()
        .to_string();
    for cap in [0.0, -5.0, f64::INFINITY, f64::NAN] {
        let config = ServeConfig::builder()
            .admission(admission)
            .governor(GovernorConfig {
                power_cap_w: cap,
                ..GovernorConfig::default()
            })
            .build();
        let mut engine = ServeEngine::new(w.clone(), model(), config);
        let report = engine
            .process_trace(&trace, 2)
            .expect("valid trace")
            .deterministic_view()
            .to_json()
            .to_string();
        assert_eq!(baseline, report, "cap={cap}");
    }
}

/// Queue waits bill the device's idle draw into per-request joules:
/// the same requests replayed under congestion cost exactly
/// `idle_power_w × queue wait` more than under a relaxed arrival rate.
#[test]
fn queue_wait_bills_idle_draw_into_request_joules() {
    let (w, trace) = bfcl_trace(80, 3, 24);
    // Unbounded-in-practice queue: both replays admit everything, so
    // the executed sets (and their execution joules) are identical and
    // only the waits differ.
    let admission = AdmissionConfig {
        queue_depth: 10_000,
        servers: 1,
        shed_policy: ShedPolicy::Reject,
    };
    let config = ServeConfig::builder().admission(admission).build();
    let run = |rate_rps: f64| -> ServeReport {
        let trace = trace
            .clone()
            .with_arrivals(ArrivalProcess::Poisson { rate_rps });
        let mut engine = ServeEngine::new(w.clone(), model(), config);
        engine.process_trace(&trace, 2).expect("valid trace")
    };
    let congested = run(30.0);
    let relaxed = run(0.001);
    assert_eq!(congested.admission.shed, 0);
    assert_eq!(relaxed.admission.shed, 0);
    assert_eq!(congested.admission.degraded, 0);
    assert!(
        congested.admission.queue_wait.mean_s > relaxed.admission.queue_wait.mean_s,
        "30 rps into one executor must queue"
    );

    let idle_w = config.device.profile().idle_power_w();
    let expected = relaxed.energy.joules_per_request.mean_s
        + idle_w * (congested.admission.queue_wait.mean_s - relaxed.admission.queue_wait.mean_s);
    let actual = congested.energy.joules_per_request.mean_s;
    assert!(
        (actual - expected).abs() <= 1e-9 * expected.max(1.0),
        "mean joules {actual:.9} must equal execution + idle×wait = {expected:.9}"
    );
}

/// Splits a trace at a global request index like [`split_trace`], but
/// preserves the arrival timestamps — governed replays live on the
/// virtual arrival clock, so the suffix must keep its stamps.
fn split_trace_with_arrivals(trace: &SessionTrace, index: usize) -> (SessionTrace, SessionTrace) {
    let mut prefix = SessionTrace {
        sessions: Vec::new(),
        ..trace.clone()
    };
    let mut suffix = prefix.clone();
    let mut remaining = index;
    for session in &trace.sessions {
        let n = session.query_indices.len();
        let take = remaining.min(n);
        remaining -= take;
        if take > 0 {
            prefix.sessions.push(TraceSession {
                id: session.id,
                tenant: session.tenant,
                query_indices: session.query_indices[..take].to_vec(),
                arrival_us: session.arrival_us[..take].to_vec(),
            });
        }
        if take < n {
            suffix.sessions.push(TraceSession {
                id: session.id,
                tenant: session.tenant,
                query_indices: session.query_indices[take..].to_vec(),
                arrival_us: session.arrival_us[take..].to_vec(),
            });
        }
    }
    (prefix, suffix)
}

/// Governed checkpoint determinism: checkpointing a capped storm after
/// any prefix and restoring into a fresh process replays the suffix to
/// the byte — the governor's rung, clock and window survive the
/// restart.
#[test]
fn governed_checkpoint_restore_replays_suffix_bit_identically() {
    let (w, levels) = fixture();
    let trace = storm_trace();
    let uncapped = storm_replay(0.0, 4);
    let config = storm_config(0.95 * uncapped.energy.sustained_watts_max);
    for split_index in [1, 57, 130, trace.requests() - 1] {
        let (prefix, suffix) = split_trace_with_arrivals(&trace, split_index);
        let mut continuous = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let mut interrupted = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        if !prefix.sessions.is_empty() {
            continuous.process_trace(&prefix, 4).expect("prefix");
            interrupted.process_trace(&prefix, 4).expect("prefix");
        }
        let bytes = interrupted.checkpoint();
        assert_eq!(bytes, interrupted.checkpoint());
        let snapshot = Snapshot::parse(&bytes).expect("valid checkpoint");
        let mut restored = ServeEngine::from_checkpoint(&snapshot, w.clone(), model(), config)
            .expect("restore succeeds");
        let expected = continuous.process_trace(&suffix, 4).expect("suffix");
        let actual = restored.process_trace(&suffix, 4).expect("suffix");
        assert_eq!(
            expected.deterministic_view(),
            actual.deterministic_view(),
            "split={split_index}"
        );
    }
}

/// A governed 3-tenant fleet storm is bit-identical across worker
/// counts, and the overall report's transition count is the sum of the
/// per-tenant governors'.
#[test]
fn governed_fleet_storm_is_bit_identical_and_sums_tenant_transitions() {
    let trace = fleet_trace(3, 1.0, 23, 18, ArrivalProcess::Poisson { rate_rps: 40.0 });
    let run = |workers: usize| {
        let base = ServeConfig::builder()
            .quant(Quant::Q8_0)
            .admission(AdmissionConfig {
                queue_depth: 6,
                servers: 2,
                shed_policy: ShedPolicy::Degrade,
            })
            .governor(GovernorConfig {
                power_cap_w: 18.0,
                window_s: 20.0,
                ..GovernorConfig::default()
            })
            .build();
        let mut fleet = fleet_for(3, base);
        fleet.process_trace(&trace, workers).expect("fleet replay")
    };
    let baseline = run(1);
    for workers in [4, 8] {
        let other = run(workers);
        assert_eq!(
            baseline.deterministic_view(),
            other.deterministic_view(),
            "workers={workers}"
        );
    }
    let tenant_sum: u64 = baseline
        .tenants
        .iter()
        .map(|t| t.report.energy.governor_transitions)
        .sum();
    assert_eq!(baseline.overall.energy.governor_transitions, tenant_sum);
    // The overall report shows the fleet-wide knobs, not a tenant slice.
    assert_eq!(baseline.overall.energy.power_cap_w, 18.0);
    let slice_sum: f64 = baseline
        .tenants
        .iter()
        .map(|t| t.report.energy.power_cap_w)
        .sum();
    assert!(
        (slice_sum - 18.0).abs() < 1e-6,
        "apportioned tenant cap slices {slice_sum} must sum to the fleet cap"
    );
}

proptest! {
    /// Governed determinism: for random power caps (including off),
    /// carbon seeds and carbon budgets, replays agree bit for bit
    /// across worker counts.
    #[test]
    fn governed_replay_deterministic_for_any_worker_count(
        seed in 0u64..100,
        workers in 2usize..9,
        cap_deciwatts in 0u32..300,
        carbon_seed in 0u64..8,
        budget_centigrams in 0u32..200,
    ) {
        let (w, levels) = fixture();
        let trace = zipf_trace(w, &TraceConfig {
            seed,
            sessions: 6,
            requests_per_session: 5,
            arrivals: ArrivalProcess::Poisson { rate_rps: 40.0 },
            ..TraceConfig::default()
        });
        let config = ServeConfig::builder()
            .quant(Quant::Q8_0)
            .admission(AdmissionConfig {
                queue_depth: 6,
                servers: 2,
                shed_policy: ShedPolicy::Degrade,
            })
            .governor(GovernorConfig {
                power_cap_w: cap_deciwatts as f64 / 10.0,
                window_s: 20.0,
                carbon_seed,
                carbon_budget_g_per_h: budget_centigrams as f64 / 100.0,
            })
            .build();
        let mut sequential =
            ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let mut parallel = ServeEngine::with_levels(w.clone(), levels.clone(), model(), config);
        let a = sequential.process_trace(&trace, 1).expect("valid trace");
        let b = parallel.process_trace(&trace, workers).expect("valid trace");
        prop_assert_eq!(a.deterministic_view(), b.deterministic_view());
    }
}
