//! Bounded-queue admission control on a deterministic virtual clock.
//!
//! An open-loop arrival process (see `lim_workloads::trace`) can outrun
//! the engine; this module decides what happens then. The simulator walks
//! the requests in canonical arrival order against a small virtual
//! system: `servers` executors, each busy for the request's *simulated*
//! service seconds, fronted by one bounded queue of capacity
//! `queue_depth` with **per-session round-robin fairness** — a chatty
//! session cannot starve a quiet one, because the dispatcher rotates over
//! the sessions that have requests waiting rather than serving the queue
//! FIFO.
//!
//! When an arrival finds every executor busy and the queue full, the
//! [`ShedPolicy`] decides its fate:
//!
//! * [`ShedPolicy::Reject`] — the request is shed (a typed
//!   [`Disposition::Shed`] outcome; it never executes and counts as a
//!   failure in the report's accuracy metrics).
//! * [`ShedPolicy::Degrade`] — pressure is relieved *before* the hard
//!   bound: arrivals that find the queue at or beyond half capacity are
//!   admitted **degraded** — served the Level-3 full catalog with zero
//!   selection work (the `ServiceLevel::Floor` rung, actuated through
//!   `ServicePolicy` in `lim-core`), so the queued work per request
//!   shrinks under load.
//!   Arrivals that find the queue completely full are still shed.
//!
//! Everything here is sequential and a pure function of its inputs
//! (arrival timestamps, per-request service seconds, session ids), so
//! queue depth, wait-time percentiles, shed and degraded counters are
//! bit-identical for every engine worker count — exactly like the cache
//! counters the engine already guarantees.

use std::collections::{HashMap, VecDeque};

/// What to do with an arrival that cannot be served or queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed over-capacity arrivals outright.
    Reject,
    /// Degrade arrivals to Level-3 / selection-free service once the
    /// queue reaches half capacity; shed only when it is full.
    Degrade,
}

impl ShedPolicy {
    /// Canonical textual form (`"reject"` / `"degrade"`) — what the CLI
    /// accepts and reports echo.
    pub fn label(&self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::Degrade => "degrade",
        }
    }

    /// Parses the [`ShedPolicy::label`] form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "reject" => Ok(ShedPolicy::Reject),
            "degrade" => Ok(ShedPolicy::Degrade),
            other => Err(format!("unknown shed policy {other:?} (reject|degrade)")),
        }
    }
}

/// Admission-control tunables (all virtual-clock; real worker threads
/// never change the numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Capacity of the bounded wait queue. `0` disables admission
    /// control entirely: every request is served instantly, as the
    /// original open-loop replay did.
    pub queue_depth: usize,
    /// Simulated executors draining the queue (an edge device typically
    /// runs one).
    pub servers: usize,
    /// Policy for over-capacity arrivals.
    pub shed_policy: ShedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_depth: 0,
            servers: 1,
            shed_policy: ShedPolicy::Reject,
        }
    }
}

impl AdmissionConfig {
    /// Whether the admission layer participates at all.
    pub fn enabled(&self) -> bool {
        self.queue_depth > 0
    }

    /// The executor count the simulation actually runs with: `servers`,
    /// floored at one. Reports echo this value so the recorded config
    /// always matches the numbers it produced.
    pub fn effective_servers(&self) -> usize {
        self.servers.max(1)
    }

    /// Queue depth at which [`ShedPolicy::Degrade`] starts degrading
    /// arrivals: half the capacity, and at least one — so a depth-1
    /// queue degrades nothing (it sheds, like `Reject`).
    pub fn degrade_watermark(&self) -> usize {
        (self.queue_depth / 2).max(1)
    }
}

/// The admission layer's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disposition {
    /// Served at full quality after `wait_s` virtual seconds in queue.
    Served {
        /// Virtual seconds spent waiting for an executor.
        wait_s: f64,
    },
    /// Served degraded (Level-3 full catalog, zero selection work) after
    /// `wait_s` virtual seconds in queue.
    Degraded {
        /// Virtual seconds spent waiting for an executor.
        wait_s: f64,
    },
    /// Never executed: arrived to a full queue.
    Shed,
}

impl Disposition {
    /// Queue wait of an admitted request; `None` for shed ones.
    pub fn wait_s(&self) -> Option<f64> {
        match self {
            Disposition::Served { wait_s } | Disposition::Degraded { wait_s } => Some(*wait_s),
            Disposition::Shed => None,
        }
    }
}

/// Everything one simulation produced, in canonical request order.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// Per-request verdicts, index-aligned with the inputs.
    pub dispositions: Vec<Disposition>,
    /// Deepest the wait queue ever got.
    pub max_queue_depth: usize,
    /// Requests shed (never executed).
    pub shed: u64,
    /// Requests served degraded.
    pub degraded: u64,
}

impl AdmissionOutcome {
    /// Queue waits of all admitted requests, canonical order.
    pub fn waits(&self) -> Vec<f64> {
        self.dispositions
            .iter()
            .filter_map(Disposition::wait_s)
            .collect()
    }
}

/// The bounded wait queue with per-session round-robin fairness.
///
/// Requests are held in per-session FIFO sub-queues; a rotation list over
/// the sessions that currently have waiters decides dispatch order. A
/// session joins the rotation tail when its first request queues and
/// rotates to the tail again after each dispatch, so N waiting sessions
/// each get every Nth executor slot regardless of how many requests any
/// one of them has piled up.
#[derive(Debug, Clone)]
struct FairQueue {
    per_session: HashMap<u64, VecDeque<usize>>,
    rotation: VecDeque<u64>,
    len: usize,
}

impl FairQueue {
    fn new() -> Self {
        Self {
            per_session: HashMap::new(),
            rotation: VecDeque::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, session: u64, request: usize) {
        let waiters = self.per_session.entry(session).or_default();
        if waiters.is_empty() {
            self.rotation.push_back(session);
        }
        waiters.push_back(request);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<usize> {
        let session = self.rotation.pop_front()?;
        let waiters = self
            .per_session
            .get_mut(&session)
            .expect("rotated session has a sub-queue");
        let request = waiters.pop_front().expect("rotated session has a waiter");
        if !waiters.is_empty() {
            self.rotation.push_back(session);
        }
        self.len -= 1;
        Some(request)
    }
}

/// The virtual-clock admission simulation as a **stateful, incremental**
/// machine: requests are [`AdmissionSim::offer`]ed one at a time (in
/// canonical arrival order), each offer resolving zero or more earlier
/// requests whose executor slot came up before the new arrival instant.
/// [`AdmissionSim::drain`] works the queue dry after the last arrival and
/// [`AdmissionSim::into_outcome`] yields the same [`AdmissionOutcome`]
/// the batch [`simulate`] walk produces — `simulate` *is* this machine
/// driven in a loop, so the two can never disagree.
///
/// The incremental shape exists for the streaming front-end: a live
/// session offers each request as it arrives and forwards the
/// newly-resolved `(request index, Disposition)` pairs as wire frames,
/// while the offline replay drives the identical state machine from a
/// trace file.
#[derive(Debug, Clone)]
pub struct AdmissionSim {
    config: AdmissionConfig,
    /// Whether requests carry real arrival timestamps. A closed-loop
    /// (back-to-back) stream never queues: each request arrives exactly
    /// when the engine is ready for it.
    open_loop: bool,
    /// Virtual time each executor becomes free; index is the tie-break.
    busy_until: Vec<f64>,
    queue: FairQueue,
    dispositions: Vec<Disposition>,
    degraded_flag: Vec<bool>,
    arrivals: Vec<f64>,
    services: Vec<f64>,
    degraded_services: Vec<f64>,
    max_queue_depth: usize,
    shed: u64,
    degraded: u64,
    last_arrival: f64,
}

impl AdmissionSim {
    /// Creates an empty simulation. `open_loop` says whether offers carry
    /// real arrival timestamps; when `false` (a back-to-back trace) or
    /// when the queue is disabled (`queue_depth == 0`), every offer is
    /// served instantly and no state evolves.
    pub fn new(config: AdmissionConfig, open_loop: bool) -> Self {
        let servers = config.effective_servers();
        Self {
            config,
            open_loop,
            busy_until: vec![0.0f64; servers],
            queue: FairQueue::new(),
            dispositions: Vec::new(),
            degraded_flag: Vec::new(),
            arrivals: Vec::new(),
            services: Vec::new(),
            degraded_services: Vec::new(),
            max_queue_depth: 0,
            shed: 0,
            degraded: 0,
            last_arrival: 0.0,
        }
    }

    /// Whether the bypass path (serve everything instantly) is active.
    fn bypass(&self) -> bool {
        !self.open_loop || !self.config.enabled()
    }

    /// Requests offered so far; the next offer gets this index.
    pub fn submitted(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether request `i` was marked for degraded (Level-3) service.
    /// The flag is decided synchronously during the request's own
    /// [`offer`](Self::offer), so it is stable immediately afterwards.
    pub fn degraded(&self, i: usize) -> bool {
        self.degraded_flag[i]
    }

    /// Full-quality or degraded service seconds for request `i`.
    fn service_of(&self, i: usize) -> f64 {
        if self.degraded_flag[i] {
            self.degraded_services[i]
        } else {
            self.services[i]
        }
    }

    /// The earliest-free executor; ties break on the lowest index so the
    /// walk is deterministic.
    fn earliest(&self) -> (usize, f64) {
        let mut best = 0usize;
        for (i, t) in self.busy_until.iter().enumerate().skip(1) {
            if *t < self.busy_until[best] {
                best = i;
            }
        }
        (best, self.busy_until[best])
    }

    /// Pops the fairness rotation once, stamping the popped request's
    /// disposition, and returns the `(index, Disposition)` pair.
    fn dispatch_one(&mut self, idx: usize, free_at: f64) -> (usize, Disposition) {
        let next = self.queue.pop().expect("non-empty queue");
        let wait_s = free_at - self.arrivals[next];
        let disposition = if self.degraded_flag[next] {
            Disposition::Degraded { wait_s }
        } else {
            Disposition::Served { wait_s }
        };
        self.dispositions[next] = disposition;
        self.busy_until[idx] = free_at + self.service_of(next);
        (next, disposition)
    }

    /// Offers the next request (canonical arrival order) to the virtual
    /// system and returns every request **newly resolved** by this offer:
    /// earlier queued requests whose executor slot came up before
    /// `arrival_s`, and the offered request itself when its fate is known
    /// immediately (served idle, or shed). A request that joins the wait
    /// queue resolves in a later offer or in [`AdmissionSim::drain`].
    ///
    /// `degraded_service_s` is the cheap service time used if the
    /// `Degrade` policy downgrades this request (falls back to
    /// `service_s` when `None`). `arrival_s` is ignored on the bypass
    /// path (closed loop / disabled queue).
    ///
    /// # Panics
    ///
    /// Panics if `arrival_s` decreases across offers on the open-loop
    /// path.
    pub fn offer(
        &mut self,
        session: u64,
        arrival_s: f64,
        service_s: f64,
        degraded_service_s: Option<f64>,
    ) -> Vec<(usize, Disposition)> {
        let i = self.submitted();
        self.arrivals.push(arrival_s);
        self.services.push(service_s);
        self.degraded_services
            .push(degraded_service_s.unwrap_or(service_s));
        self.degraded_flag.push(false);
        // Placeholder until resolved — matches the batch walk's initial
        // `vec![Shed; n]`.
        self.dispositions.push(Disposition::Shed);

        if self.bypass() {
            let disposition = Disposition::Served { wait_s: 0.0 };
            self.dispositions[i] = disposition;
            return vec![(i, disposition)];
        }

        let t = arrival_s;
        assert!(
            t >= self.last_arrival,
            "arrivals must be nondecreasing in canonical order"
        );
        self.last_arrival = t;

        // Replay every completion up to the arrival instant, handing the
        // freed executor to the fairness rotation each time.
        let mut resolved = Vec::new();
        while self.queue.len() > 0 {
            let (idx, free_at) = self.earliest();
            if free_at > t {
                break;
            }
            resolved.push(self.dispatch_one(idx, free_at));
        }

        let (idx, free_at) = self.earliest();
        if free_at <= t && self.queue.len() == 0 {
            // An executor is idle: serve immediately.
            let disposition = Disposition::Served { wait_s: 0.0 };
            self.dispositions[i] = disposition;
            self.busy_until[idx] = t + self.services[i];
            resolved.push((i, disposition));
            return resolved;
        }
        let depth = self.queue.len();
        if depth >= self.config.queue_depth {
            self.dispositions[i] = Disposition::Shed;
            self.shed += 1;
            resolved.push((i, Disposition::Shed));
            return resolved;
        }
        if self.config.shed_policy == ShedPolicy::Degrade
            && depth >= self.config.degrade_watermark()
        {
            self.degraded_flag[i] = true;
            self.degraded += 1;
        }
        self.queue.push(session, i);
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
        resolved
    }

    /// Drains the wait queue after the last arrival: the executors work
    /// it dry. Returns the requests resolved by the drain, in dispatch
    /// order. Idempotent — a second call returns nothing.
    pub fn drain(&mut self) -> Vec<(usize, Disposition)> {
        let mut resolved = Vec::new();
        while self.queue.len() > 0 {
            let (idx, free_at) = self.earliest();
            resolved.push(self.dispatch_one(idx, free_at));
        }
        resolved
    }

    /// Consumes the simulation into its aggregate outcome. Call
    /// [`AdmissionSim::drain`] first — any request still queued keeps its
    /// unresolved `Shed` placeholder otherwise.
    pub fn into_outcome(mut self) -> AdmissionOutcome {
        debug_assert_eq!(self.queue.len(), 0, "into_outcome called before drain");
        self.shed += self.queue.len() as u64; // defensive: count stragglers
        AdmissionOutcome {
            dispositions: self.dispositions,
            max_queue_depth: self.max_queue_depth,
            shed: self.shed,
            degraded: self.degraded,
        }
    }
}

/// One tenant's aggregate admission counters inside a fleet simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantAdmission {
    /// Requests of this tenant shed (never executed).
    pub shed: u64,
    /// Requests of this tenant served degraded.
    pub degraded: u64,
    /// Deepest this tenant's own wait queue ever got.
    pub max_queue_depth: usize,
}

/// Everything one fleet simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAdmissionOutcome {
    /// The fleet-wide outcome: per-request verdicts in global canonical
    /// order, plus counters summed across tenants
    /// (`max_queue_depth` is the deepest the *combined* backlog got).
    pub overall: AdmissionOutcome,
    /// Which tenant each request belongs to, index-aligned with
    /// `overall.dispositions`.
    pub tenant_of: Vec<usize>,
    /// Per-tenant counters, indexed by tenant id.
    pub tenants: Vec<TenantAdmission>,
}

impl FleetAdmissionOutcome {
    /// Projects one tenant's view: its requests' dispositions in global
    /// canonical order (which is also the tenant's own canonical order —
    /// a subsequence preserves order) plus its private counters. This is
    /// what per-tenant report sections aggregate from.
    pub fn tenant_outcome(&self, tenant: usize) -> AdmissionOutcome {
        let counters = self.tenants.get(tenant).copied().unwrap_or_default();
        AdmissionOutcome {
            dispositions: self
                .overall
                .dispositions
                .iter()
                .zip(&self.tenant_of)
                .filter(|(_, t)| **t == tenant)
                .map(|(d, _)| *d)
                .collect(),
            max_queue_depth: counters.max_queue_depth,
            shed: counters.shed,
            degraded: counters.degraded,
        }
    }
}

/// The fleet-tenancy admission machine: [`AdmissionSim`] lifted from one
/// bounded queue to **two-level round-robin** — a rotation over tenants
/// that have waiters, then each tenant's own per-session `FairQueue` —
/// over one shared executor pool. A tenant joins the rotation tail when
/// its first request queues and rotates back after each dispatch, so N
/// backlogged tenants each get every Nth executor slot no matter how
/// much traffic any one of them floods in; *within* its slot a tenant's
/// sessions get the same guarantee against each other.
///
/// Each tenant keeps its own `queue_depth`, `shed_policy` and degrade
/// watermark (checked against the tenant's own backlog, so a hot
/// tenant's pile-up can never push a cold tenant over *its* shed bound),
/// while the virtual executors and the clock are fleet-shared. The walk
/// is the same sequential pure function of the global canonical arrival
/// order that [`AdmissionSim`] computes; with a single tenant the two
/// machines are state-for-state identical, which the N=1 equivalence
/// tests pin down.
///
/// The fleet-level admission layer is enabled only when *every* tenant
/// config is enabled; one disabled tenant (queue depth 0) bypasses the
/// whole fleet, exactly as a disabled config bypasses [`AdmissionSim`].
#[derive(Debug, Clone)]
pub struct FleetAdmissionSim {
    configs: Vec<AdmissionConfig>,
    open_loop: bool,
    enabled: bool,
    /// Virtual time each shared executor becomes free; index tie-breaks.
    busy_until: Vec<f64>,
    queues: Vec<FairQueue>,
    tenant_rotation: VecDeque<usize>,
    /// Total requests currently waiting across all tenant queues.
    queued: usize,
    tenant_of: Vec<usize>,
    dispositions: Vec<Disposition>,
    degraded_flag: Vec<bool>,
    arrivals: Vec<f64>,
    services: Vec<f64>,
    degraded_services: Vec<f64>,
    max_queue_depth: usize,
    shed: u64,
    degraded: u64,
    tenants: Vec<TenantAdmission>,
    last_arrival: f64,
}

impl FleetAdmissionSim {
    /// Creates an empty fleet simulation: one admission config per
    /// tenant, `servers` shared executors, and the same `open_loop`
    /// contract as [`AdmissionSim::new`].
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<AdmissionConfig>, servers: usize, open_loop: bool) -> Self {
        assert!(!configs.is_empty(), "fleet needs at least one tenant");
        let enabled = configs.iter().all(AdmissionConfig::enabled);
        let n = configs.len();
        Self {
            configs,
            open_loop,
            enabled,
            busy_until: vec![0.0f64; servers.max(1)],
            queues: (0..n).map(|_| FairQueue::new()).collect(),
            tenant_rotation: VecDeque::new(),
            queued: 0,
            tenant_of: Vec::new(),
            dispositions: Vec::new(),
            degraded_flag: Vec::new(),
            arrivals: Vec::new(),
            services: Vec::new(),
            degraded_services: Vec::new(),
            max_queue_depth: 0,
            shed: 0,
            degraded: 0,
            tenants: vec![TenantAdmission::default(); n],
            last_arrival: 0.0,
        }
    }

    /// Whether the bypass path (serve everything instantly) is active.
    fn bypass(&self) -> bool {
        !self.open_loop || !self.enabled
    }

    /// Requests offered so far; the next offer gets this global index.
    pub fn submitted(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether request `i` was marked for degraded (Level-3) service
    /// (decided synchronously during its own [`offer`](Self::offer)).
    pub fn degraded(&self, i: usize) -> bool {
        self.degraded_flag[i]
    }

    /// Full-quality or degraded service seconds for request `i`.
    fn service_of(&self, i: usize) -> f64 {
        if self.degraded_flag[i] {
            self.degraded_services[i]
        } else {
            self.services[i]
        }
    }

    /// The earliest-free executor; ties break on the lowest index.
    fn earliest(&self) -> (usize, f64) {
        let mut best = 0usize;
        for (i, t) in self.busy_until.iter().enumerate().skip(1) {
            if *t < self.busy_until[best] {
                best = i;
            }
        }
        (best, self.busy_until[best])
    }

    /// Pops the two-level rotation once (next tenant, then that tenant's
    /// session rotation), stamping the popped request's disposition.
    fn dispatch_one(&mut self, idx: usize, free_at: f64) -> (usize, Disposition) {
        let tenant = self
            .tenant_rotation
            .pop_front()
            .expect("non-empty fleet backlog");
        let next = self.queues[tenant].pop().expect("rotated tenant waits");
        if self.queues[tenant].len() > 0 {
            self.tenant_rotation.push_back(tenant);
        }
        self.queued -= 1;
        let wait_s = free_at - self.arrivals[next];
        let disposition = if self.degraded_flag[next] {
            Disposition::Degraded { wait_s }
        } else {
            Disposition::Served { wait_s }
        };
        self.dispositions[next] = disposition;
        self.busy_until[idx] = free_at + self.service_of(next);
        (next, disposition)
    }

    /// Offers the next request (global canonical arrival order) for
    /// `tenant` and returns every request newly resolved by this offer —
    /// the fleet form of [`AdmissionSim::offer`].
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range or `arrival_s` decreases
    /// across offers on the open-loop path.
    pub fn offer(
        &mut self,
        tenant: usize,
        session: u64,
        arrival_s: f64,
        service_s: f64,
        degraded_service_s: Option<f64>,
    ) -> Vec<(usize, Disposition)> {
        assert!(tenant < self.configs.len(), "tenant {tenant} out of range");
        let i = self.submitted();
        self.tenant_of.push(tenant);
        self.arrivals.push(arrival_s);
        self.services.push(service_s);
        self.degraded_services
            .push(degraded_service_s.unwrap_or(service_s));
        self.degraded_flag.push(false);
        self.dispositions.push(Disposition::Shed);

        if self.bypass() {
            let disposition = Disposition::Served { wait_s: 0.0 };
            self.dispositions[i] = disposition;
            return vec![(i, disposition)];
        }

        let t = arrival_s;
        assert!(
            t >= self.last_arrival,
            "arrivals must be nondecreasing in canonical order"
        );
        self.last_arrival = t;

        // Replay every completion up to the arrival instant, handing
        // each freed executor to the two-level rotation.
        let mut resolved = Vec::new();
        while self.queued > 0 {
            let (idx, free_at) = self.earliest();
            if free_at > t {
                break;
            }
            resolved.push(self.dispatch_one(idx, free_at));
        }

        let (idx, free_at) = self.earliest();
        if free_at <= t && self.queued == 0 {
            // An executor is idle and no tenant has a backlog: serve
            // immediately.
            let disposition = Disposition::Served { wait_s: 0.0 };
            self.dispositions[i] = disposition;
            self.busy_until[idx] = t + self.services[i];
            resolved.push((i, disposition));
            return resolved;
        }
        // Bounds and policy are the *tenant's own*: its backlog, its
        // depth, its watermark. Another tenant's flood never shows up in
        // these numbers.
        let config = self.configs[tenant];
        let depth = self.queues[tenant].len();
        if depth >= config.queue_depth {
            self.dispositions[i] = Disposition::Shed;
            self.shed += 1;
            self.tenants[tenant].shed += 1;
            resolved.push((i, Disposition::Shed));
            return resolved;
        }
        if config.shed_policy == ShedPolicy::Degrade && depth >= config.degrade_watermark() {
            self.degraded_flag[i] = true;
            self.degraded += 1;
            self.tenants[tenant].degraded += 1;
        }
        if self.queues[tenant].len() == 0 {
            self.tenant_rotation.push_back(tenant);
        }
        self.queues[tenant].push(session, i);
        self.queued += 1;
        self.max_queue_depth = self.max_queue_depth.max(self.queued);
        self.tenants[tenant].max_queue_depth = self.tenants[tenant]
            .max_queue_depth
            .max(self.queues[tenant].len());
        resolved
    }

    /// Drains every tenant's backlog after the last arrival — the fleet
    /// form of [`AdmissionSim::drain`]. Idempotent.
    pub fn drain(&mut self) -> Vec<(usize, Disposition)> {
        let mut resolved = Vec::new();
        while self.queued > 0 {
            let (idx, free_at) = self.earliest();
            resolved.push(self.dispatch_one(idx, free_at));
        }
        resolved
    }

    /// Consumes the simulation into its aggregate outcome. Call
    /// [`FleetAdmissionSim::drain`] first.
    pub fn into_outcome(self) -> FleetAdmissionOutcome {
        debug_assert_eq!(self.queued, 0, "into_outcome called before drain");
        FleetAdmissionOutcome {
            overall: AdmissionOutcome {
                dispositions: self.dispositions,
                max_queue_depth: self.max_queue_depth,
                shed: self.shed,
                degraded: self.degraded,
            },
            tenant_of: self.tenant_of,
            tenants: self.tenants,
        }
    }
}

/// Runs the virtual-clock admission simulation over a whole batch.
///
/// * `arrivals_s` — per-request arrival timestamps in canonical order
///   (nondecreasing), or `None` for a back-to-back (closed-loop) trace,
///   where by construction nothing ever waits or sheds.
/// * `sessions` — per-request session id (fairness key).
/// * `service_s` — per-request full-quality service seconds.
/// * `degraded_service_s` — per-request degraded service seconds; used
///   for requests the `Degrade` policy downgrades (falls back to
///   `service_s` when absent).
///
/// Returns one [`Disposition`] per request plus the aggregate counters.
/// This is a thin wrapper that drives the incremental [`AdmissionSim`]
/// one offer per request — the batch and streaming paths share one code
/// path, so their outputs are bit-identical by construction (and the
/// walk is sequential and pure, so the output is also bit-identical for
/// any engine worker count).
///
/// # Panics
///
/// Panics if the input slices disagree on length or arrivals decrease.
pub fn simulate(
    arrivals_s: Option<&[f64]>,
    sessions: &[u64],
    service_s: &[f64],
    degraded_service_s: Option<&[f64]>,
    config: &AdmissionConfig,
) -> AdmissionOutcome {
    let n = service_s.len();
    assert_eq!(sessions.len(), n, "one session id per request");
    if let Some(d) = degraded_service_s {
        assert_eq!(d.len(), n, "one degraded service time per request");
    }
    if let Some(arrivals) = arrivals_s {
        assert_eq!(arrivals.len(), n, "one arrival per request");
    }
    let mut sim = AdmissionSim::new(*config, arrivals_s.is_some());
    for i in 0..n {
        sim.offer(
            sessions[i],
            arrivals_s.map_or(0.0, |a| a[i]),
            service_s[i],
            degraded_service_s.map(|d| d[i]),
        );
    }
    sim.drain();
    sim.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(depth: usize, policy: ShedPolicy) -> AdmissionConfig {
        AdmissionConfig {
            queue_depth: depth,
            servers: 1,
            shed_policy: policy,
        }
    }

    #[test]
    fn back_to_back_never_waits_or_sheds() {
        let out = simulate(
            None,
            &[1, 1, 2],
            &[5.0, 5.0, 5.0],
            None,
            &config(2, ShedPolicy::Reject),
        );
        assert_eq!(out.shed, 0);
        assert_eq!(out.max_queue_depth, 0);
        assert!(out.waits().iter().all(|w| *w == 0.0));
    }

    #[test]
    fn disabled_queue_serves_everything_instantly() {
        let out = simulate(
            Some(&[0.0, 0.0, 0.0]),
            &[1, 1, 1],
            &[9.0, 9.0, 9.0],
            None,
            &config(0, ShedPolicy::Reject),
        );
        assert_eq!(out.shed, 0);
        assert!(out.waits().iter().all(|w| *w == 0.0));
    }

    #[test]
    fn single_server_burst_waits_cumulatively() {
        // Three simultaneous arrivals, 2s service, one server: waits are
        // 0, 2 and 4 seconds.
        let out = simulate(
            Some(&[0.0, 0.0, 0.0]),
            &[1, 1, 1],
            &[2.0, 2.0, 2.0],
            None,
            &config(8, ShedPolicy::Reject),
        );
        assert_eq!(out.waits(), vec![0.0, 2.0, 4.0]);
        assert_eq!(out.max_queue_depth, 2);
        assert_eq!(out.shed, 0);
    }

    #[test]
    fn full_queue_sheds_under_reject() {
        // One in service + queue of 1: the 3rd..5th simultaneous
        // arrivals find the queue full.
        let out = simulate(
            Some(&[0.0; 5]),
            &[1; 5],
            &[10.0; 5],
            None,
            &config(1, ShedPolicy::Reject),
        );
        assert_eq!(out.shed, 3);
        assert_eq!(
            out.dispositions[2..],
            [Disposition::Shed, Disposition::Shed, Disposition::Shed]
        );
        assert_eq!(out.max_queue_depth, 1);
    }

    #[test]
    fn round_robin_interleaves_sessions() {
        // Session 1 floods with four requests at t=0; session 2's two
        // requests arrive right after. One server, 1s service. Without
        // fairness session 2 would wait behind all of session 1; with
        // round-robin its first request is dispatched second.
        let out = simulate(
            Some(&[0.0, 0.0, 0.0, 0.0, 0.1, 0.1]),
            &[1, 1, 1, 1, 2, 2],
            &[1.0; 6],
            None,
            &config(8, ShedPolicy::Reject),
        );
        let wait = |i: usize| out.dispositions[i].wait_s().unwrap();
        // Dispatch order: 0 (immediate), then RR over {1: [1,2,3], 2: [4,5]}:
        // 1, 4, 2, 5, 3.
        assert_eq!(wait(0), 0.0);
        assert_eq!(wait(1), 1.0);
        assert!((wait(4) - 1.9).abs() < 1e-9, "session 2 dispatched second");
        assert_eq!(wait(2), 3.0);
        assert!((wait(5) - 3.9).abs() < 1e-9);
        assert_eq!(wait(3), 5.0);
    }

    #[test]
    fn degrade_kicks_in_at_the_watermark_then_sheds() {
        // Queue depth 4 → watermark 2. Everything arrives at once with
        // slow normal service and fast degraded service.
        let degraded = [0.5f64; 8];
        let out = simulate(
            Some(&[0.0; 8]),
            &[1; 8],
            &[10.0; 8],
            Some(&degraded),
            &config(4, ShedPolicy::Degrade),
        );
        // 0 served immediately; 1,2 queue normally (depth 0,1 < 2);
        // 3,4 degrade (depth 2,3); 5..8 shed (queue full).
        assert_eq!(out.degraded, 2);
        assert_eq!(out.shed, 3);
        assert!(matches!(out.dispositions[3], Disposition::Degraded { .. }));
        assert!(matches!(out.dispositions[4], Disposition::Degraded { .. }));
    }

    #[test]
    fn degraded_service_time_drains_the_queue_faster() {
        // Steady overload: with Degrade the cheap service time lets later
        // arrivals find room that Reject's full-cost queue does not have.
        let n = 40;
        let arrivals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let sessions: Vec<u64> = (0..n as u64).collect();
        let service = vec![4.0f64; n];
        let degraded = vec![0.25f64; n];
        let rejecting = simulate(
            Some(&arrivals),
            &sessions,
            &service,
            None,
            &config(4, ShedPolicy::Reject),
        );
        let degrading = simulate(
            Some(&arrivals),
            &sessions,
            &service,
            Some(&degraded),
            &config(4, ShedPolicy::Degrade),
        );
        assert!(rejecting.shed > 0);
        assert!(degrading.degraded > 0);
        assert!(
            degrading.shed < rejecting.shed,
            "degrade shed {} vs reject shed {}",
            degrading.shed,
            rejecting.shed
        );
    }

    #[test]
    fn multiple_servers_raise_capacity() {
        let arrivals = [0.0, 0.0, 0.0, 0.0];
        let one = simulate(
            Some(&arrivals),
            &[1; 4],
            &[2.0; 4],
            None,
            &AdmissionConfig {
                queue_depth: 8,
                servers: 1,
                shed_policy: ShedPolicy::Reject,
            },
        );
        let two = simulate(
            Some(&arrivals),
            &[1; 4],
            &[2.0; 4],
            None,
            &AdmissionConfig {
                queue_depth: 8,
                servers: 2,
                shed_policy: ShedPolicy::Reject,
            },
        );
        let total = |o: &AdmissionOutcome| o.waits().iter().sum::<f64>();
        assert!(total(&two) < total(&one));
        assert_eq!(two.waits(), vec![0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn incremental_offers_match_batch_simulate_and_report_resolutions() {
        // A storm that exercises idle-serve, queueing, degrade, shed and
        // the final drain, with two interleaved sessions.
        let arrivals: Vec<f64> = (0..24).map(|i| i as f64 * 0.3).collect();
        let sessions: Vec<u64> = (0..24).map(|i| i % 2).collect();
        let service = vec![2.0f64; 24];
        let degraded = vec![0.4f64; 24];
        let cfg = config(4, ShedPolicy::Degrade);

        let batch = simulate(Some(&arrivals), &sessions, &service, Some(&degraded), &cfg);

        let mut sim = AdmissionSim::new(cfg, true);
        let mut resolved = [false; 24];
        for i in 0..24 {
            for (idx, d) in sim.offer(sessions[i], arrivals[i], service[i], Some(degraded[i])) {
                assert!(!resolved[idx], "request {idx} resolved twice");
                resolved[idx] = true;
                assert_eq!(d, batch.dispositions[idx]);
            }
        }
        for (idx, d) in sim.drain() {
            assert!(!resolved[idx], "request {idx} resolved twice");
            resolved[idx] = true;
            assert_eq!(d, batch.dispositions[idx]);
        }
        assert!(resolved.iter().all(|r| *r), "every request resolves");
        assert_eq!(sim.into_outcome(), batch);
    }

    #[test]
    fn bypass_path_resolves_each_offer_instantly() {
        let mut sim = AdmissionSim::new(config(0, ShedPolicy::Reject), true);
        let events = sim.offer(7, 1.0, 5.0, None);
        assert_eq!(events, vec![(0, Disposition::Served { wait_s: 0.0 })]);
        assert!(sim.drain().is_empty());
        let out = sim.into_outcome();
        assert_eq!(out.shed, 0);
        assert_eq!(out.max_queue_depth, 0);
    }

    #[test]
    fn fleet_with_one_tenant_matches_the_single_machine() {
        let arrivals: Vec<f64> = (0..32).map(|i| i as f64 * 0.3).collect();
        let sessions: Vec<u64> = (0..32).map(|i| i % 3).collect();
        let cfg = config(4, ShedPolicy::Degrade);
        let mut single = AdmissionSim::new(cfg, true);
        let mut fleet = FleetAdmissionSim::new(vec![cfg], cfg.effective_servers(), true);
        for i in 0..32 {
            let a = single.offer(sessions[i], arrivals[i], 2.0, Some(0.4));
            let b = fleet.offer(0, sessions[i], arrivals[i], 2.0, Some(0.4));
            assert_eq!(a, b, "offer {i} diverged");
        }
        assert_eq!(single.drain(), fleet.drain());
        let single = single.into_outcome();
        let fleet = fleet.into_outcome();
        assert_eq!(fleet.overall, single);
        assert_eq!(fleet.tenant_outcome(0), single);
    }

    #[test]
    fn two_level_round_robin_rotates_tenants_strictly_under_saturation() {
        // Three tenants flood simultaneously: tenant 0 with 6 requests,
        // tenants 1 and 2 with 2 each. One server, 1s service. Request 0
        // (tenant 0) is served idle; everything else queues. Strict
        // rotation then serves tenants 0,1,2,0,1,2,... — tenant 0's
        // backlog never lets it take two consecutive slots while another
        // tenant waits.
        let cfg = config(8, ShedPolicy::Reject);
        let mut fleet = FleetAdmissionSim::new(vec![cfg; 3], 1, true);
        let offered: Vec<usize> = vec![0, 0, 0, 0, 0, 0, 1, 2, 1, 2];
        let mut order: Vec<usize> = Vec::new(); // tenant per dispatch
        for &tenant in &offered {
            for (idx, d) in fleet.offer(tenant, 1, 0.0, 1.0, None) {
                assert_ne!(d, Disposition::Shed);
                order.push(offered[idx]);
            }
        }
        for (idx, _) in fleet.drain() {
            order.push(offered[idx]);
        }
        let outcome = fleet.into_outcome();
        let dispatch_tenants = order;
        // Idle-served request 0 (tenant 0), then strict rotation over
        // the tenants with waiters until the short tenants run dry.
        assert_eq!(dispatch_tenants[..8], [0, 0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(outcome.overall.shed, 0);
        // Tenant 1's first queued request was dispatched ahead of
        // tenant 0's deep backlog even though it arrived later.
        let waits_of = |t: usize| outcome.tenant_outcome(t).waits();
        assert!(waits_of(1)[0] < waits_of(0)[2]);
    }

    #[test]
    fn per_tenant_bounds_isolate_a_flooding_tenant() {
        // Tenant 0 floods 10 simultaneous requests into a depth-2 queue;
        // tenant 1 offers 2. Tenant 0 sheds against its own bound only —
        // tenant 1 sheds nothing and its counters stay clean.
        let cfg = config(2, ShedPolicy::Reject);
        let mut fleet = FleetAdmissionSim::new(vec![cfg; 2], 1, true);
        for _ in 0..10 {
            fleet.offer(0, 1, 0.0, 5.0, None);
        }
        for _ in 0..2 {
            fleet.offer(1, 9, 0.0, 5.0, None);
        }
        fleet.drain();
        let out = fleet.into_outcome();
        assert!(out.tenants[0].shed > 0, "flooding tenant sheds");
        assert_eq!(out.tenants[1].shed, 0, "quiet tenant never sheds");
        assert_eq!(out.tenants[1].max_queue_depth, 2);
        assert_eq!(
            out.overall.shed,
            out.tenants[0].shed + out.tenants[1].shed,
            "global counters are the tenant sums"
        );
        // Mixed per-tenant policies: tenant 1 degrades under its own
        // watermark while tenant 0 keeps rejecting.
        let mut mixed = FleetAdmissionSim::new(
            vec![
                config(2, ShedPolicy::Reject),
                config(4, ShedPolicy::Degrade),
            ],
            1,
            true,
        );
        for _ in 0..6 {
            mixed.offer(0, 1, 0.0, 5.0, None);
            mixed.offer(1, 9, 0.0, 5.0, Some(0.5));
        }
        mixed.drain();
        let out = mixed.into_outcome();
        assert!(out.tenants[0].shed > 0);
        assert_eq!(out.tenants[0].degraded, 0);
        assert!(out.tenants[1].degraded > 0);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_arrivals_panic() {
        simulate(
            Some(&[1.0, 0.5]),
            &[1, 1],
            &[1.0, 1.0],
            None,
            &config(4, ShedPolicy::Reject),
        );
    }
}
