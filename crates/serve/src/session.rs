//! The incremental serving session: `submit` → `drain`/`tick` → `finish`.
//!
//! [`ServeEngine::process_trace`] replays a whole trace at once, but a
//! live front-end sees requests one at a time. [`ServeSession`] is the
//! streaming shape of the same engine: requests are [`ServeSession::submit`]ted
//! as they arrive, [`ServeSession::drain`] advances the deterministic
//! plan/compute/fill/execute stages plus the virtual-clock admission
//! queue over the batch accumulated so far, and [`ServeSession::finish`]
//! produces the exact [`ServeReport`] the batch replay would have
//! produced — `process_trace` *is* a `ServeSession` fed the whole trace
//! and drained once, so the two paths cannot diverge (one code path, not
//! two).
//!
//! # Why batching boundaries cannot change the numbers
//!
//! Every observable number is a pure function of the *lookup sequence*,
//! which is the submission order regardless of how it is chopped into
//! drains:
//!
//! * The caches evolve only in the sequential plan stage, in submission
//!   order. `fill` never touches recency or counters (and insertions are
//!   counted at reservation), so *when* fills land — per batch or at the
//!   end of a trace — is unobservable.
//! * A key resolved `Reserved`/`Pending` inside one big batch resolves
//!   `Hit`/`Ready` across a drain boundary instead; both count as hits,
//!   bill the same [cost class](crate::ServeConfig), and carry the same
//!   selection value (selection is a pure function of the normalized
//!   query).
//! * Admission is driven through the incremental
//!   [`AdmissionSim`] one offer per request in
//!   submission order — the batch path drives the identical machine.
//!
//! # Examples
//!
//! ```
//! use lim_serve::{ServeConfig, ServeEngine, StreamMeta, StreamRequest};
//!
//! let workload = lim_workloads::bfcl(7, 40);
//! let model = lim_llm::ModelProfile::by_name("llama3.1-8b").expect("model exists");
//! let mut engine = ServeEngine::new(workload, model, ServeConfig::default());
//!
//! let mut session = engine.begin_stream(StreamMeta::default(), 1);
//! let ticket = session
//!     .submit(StreamRequest { session: 0, query_index: 3, arrival_s: None })
//!     .expect("index in pool");
//! assert_eq!(ticket.index(), 0);
//! let events = session.drain();
//! assert_eq!(events.len(), 1, "closed loop resolves instantly");
//! let report = session.finish();
//! assert_eq!(report.requests, 1);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use lim_core::{resolve_threads, sharded_map, Pipeline, Policy, ServiceLevel};
use lim_workloads::trace::ArrivalProcess;

use crate::admission::{AdmissionSim, Disposition, ShedPolicy};
use crate::cache::CacheStats;
use crate::engine::{
    ComputedSelection, ReportScope, RequestOutcome, SelectionJob, SelectionSource, ServeEngine,
};
use crate::governor::{EnergyAccounting, EnergyLedger};
use crate::report::ServeReport;

/// Trace-level metadata a streaming front-end declares up front (the
/// wire protocol's `hello` frame carries exactly these fields): the
/// report inputs that are not derivable from the requests themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMeta {
    /// Seed the trace (or live generator) was drawn with; echoed in the
    /// report as `trace_seed`.
    pub trace_seed: u64,
    /// Zipf popularity exponent of the stream; echoed in the report.
    pub zipf_s: f64,
    /// Arrival process of the stream. Anything but
    /// [`ArrivalProcess::BackToBack`] makes the stream *open-loop*:
    /// every request must then carry an arrival timestamp, and the
    /// admission queue participates.
    pub arrivals: ArrivalProcess,
    /// Session count to report, when the caller knows it (a replayed
    /// trace does). `None` counts runs of consecutive session ids in
    /// submission order, which equals the trace's session count for any
    /// session-major stream.
    pub sessions: Option<usize>,
}

impl Default for StreamMeta {
    fn default() -> Self {
        Self {
            trace_seed: 0,
            zipf_s: 0.0,
            arrivals: ArrivalProcess::BackToBack,
            sessions: None,
        }
    }
}

/// One request entering a [`ServeSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRequest {
    /// Session (conversation) the request belongs to — the per-session
    /// fast-path and admission-fairness key.
    pub session: u64,
    /// Index into the engine workload's query pool (trace-v1 semantics).
    pub query_index: usize,
    /// Virtual arrival instant in seconds. Required on open-loop
    /// streams, forbidden on closed-loop ones.
    pub arrival_s: Option<f64>,
}

/// Receipt for one submitted request: its index in global submission
/// order. [`RequestEvent`]s and the report's per-request vectors refer
/// back to this index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(pub(crate) usize);

impl Ticket {
    /// Zero-based position of the request in submission order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A request's fate, emitted once its admission disposition resolves —
/// immediately for idle-served and shed requests, at a later drain for
/// queued ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestEvent {
    /// Which request resolved.
    pub ticket: Ticket,
    /// Its admission verdict (wait time included for admitted requests).
    pub disposition: Disposition,
    /// Simulated service seconds of the outcome actually served —
    /// degraded requests bill the degraded (Level-3, selection-free)
    /// path. `None` for shed requests, which never execute.
    pub service_s: Option<f64>,
}

/// Output of one engine drain batch.
pub(crate) struct DrainOutput {
    pub(crate) outcomes: Vec<RequestOutcome>,
    /// Degraded-path alternatives, index-aligned; empty when the
    /// admission config can never degrade.
    pub(crate) degraded: Vec<RequestOutcome>,
    /// Economy-rung alternatives (one quant step coarser), index-aligned;
    /// empty when no governor can ever choose them.
    pub(crate) eco: Vec<RequestOutcome>,
}

impl ServeEngine {
    /// Opens an incremental serving session. The session borrows the
    /// engine exclusively until [`ServeSession::finish`]; caches,
    /// per-session fast-path state and lifetime counters keep evolving
    /// across sessions exactly as they do across traces.
    pub fn begin_stream(&mut self, meta: StreamMeta, workers: usize) -> ServeSession<'_> {
        let workers = resolve_threads(workers);
        // Defensive: a `Pending` selection source indexes a batch job
        // table that no longer exists. `drain_batch` re-anchors every
        // touched session to `Ready` before returning, so nothing should
        // ever be `Pending` here — but a session must never start from a
        // dangling slot.
        for state in self.sessions.values_mut() {
            if matches!(state.last_selection, Some(SelectionSource::Pending(_))) {
                state.last_key = None;
                state.last_selection = None;
            }
        }
        let open_loop = meta.arrivals != ArrivalProcess::BackToBack;
        // The degrade path serves the Level-3 full catalog with zero
        // selection work; its alternative outcome is computed for every
        // request up front (parallel, deterministic) so the sequential
        // admission walk just picks per request.
        let needs_degraded = self.config.admission.enabled()
            && self.config.admission.shed_policy == ShedPolicy::Degrade
            && open_loop
            && !matches!(self.config.policy, Policy::Default);
        // The governor's Economy rung likewise needs its alternative
        // outcome per request up front. It only ever actuates on
        // open-loop streams: sustained watts is a rate over *arrival*
        // time, which a closed-loop stream does not have.
        let needs_eco = self.config.governor.active() && open_loop;
        let idle_power_w = self.config.device.profile().idle_power_w();
        let sim = AdmissionSim::new(self.config.admission, open_loop);
        let embed_before = self.embed_cache.stats();
        let memo_before = self.memo.stats();
        let session_fast_before = self.session_fast_hits;
        ServeSession {
            engine: self,
            workers,
            meta,
            open_loop,
            needs_degraded,
            needs_eco,
            idle_power_w,
            started: std::time::Instant::now(),
            embed_before,
            memo_before,
            session_fast_before,
            sim,
            pending: Vec::new(),
            outcomes: Vec::new(),
            degraded_outcomes: Vec::new(),
            eco_outcomes: Vec::new(),
            chosen: Vec::new(),
            arrivals: Vec::new(),
            energy: EnergyLedger::default(),
            queries: Vec::new(),
            session_runs: 0,
            last_session: None,
            last_arrival: 0.0,
        }
    }

    /// Runs one submitted batch through the deterministic stages:
    /// sequential cache plan, parallel unique-selection compute,
    /// sequential fill, parallel execute (plus the degraded alternative
    /// when requested). Admission is *not* part of the batch — the
    /// caller owns the incremental [`AdmissionSim`].
    pub(crate) fn drain_batch(
        &mut self,
        batch: &[StreamRequest],
        workers: usize,
        needs_degraded: bool,
        needs_eco: bool,
    ) -> DrainOutput {
        // ---- Stage 1: sequential cache plan in submission (canonical)
        // order. Cache state evolves exactly as a sequential server
        // would evolve it.
        let mut jobs: Vec<SelectionJob> = Vec::new();
        let mut slot_of: HashMap<String, usize> = HashMap::new();
        let mut planned = Vec::with_capacity(batch.len());
        for request in batch {
            planned.push(self.plan_request(
                request.session,
                request.query_index,
                &mut jobs,
                &mut slot_of,
            ));
        }

        // ---- Stage 2: parallel unique-selection compute.
        let pipeline = Pipeline::new(&self.workload, &self.levels, &self.model, self.config.quant)
            .with_seed(self.config.seed)
            .with_device(self.config.device.profile());
        let computed: Vec<ComputedSelection> = sharded_map(&jobs, workers, |_, job| {
            self.run_selection_job(&pipeline, job)
        });

        // ---- Stage 3: sequential cache fill (keeps the engine warm for
        // the next batch). Fills are unconditional: `fill` no-ops on
        // already-filled slots, and a key whose embed entry was evicted
        // and re-reserved mid-batch must not be left valueless.
        for (job, result) in jobs.iter().zip(&computed) {
            // Fills land on the epoch the batch was planned under —
            // mutations only apply between drains, so the epoch cannot
            // have moved since the reservation.
            self.embed_cache
                .fill(&self.embed_key(&job.key), Arc::clone(&result.embeddings));
            self.memo
                .fill(&self.memo_key(&job.key), Arc::clone(&result.selection));
        }

        // Re-anchor the per-session fast path: a `Pending` source
        // indexes this batch's job table, which dies now. Resolving it
        // to the computed selection keeps the fast path armed across
        // batch (and trace) boundaries; the selection value is identical
        // to what the memo holds for the same key.
        for request in batch {
            if let Some(state) = self.sessions.get_mut(&request.session) {
                if let Some(SelectionSource::Pending(slot)) = &state.last_selection {
                    state.last_selection = Some(SelectionSource::Ready(Arc::clone(
                        &computed[*slot].selection,
                    )));
                }
            }
        }

        // ---- Stage 4: parallel chain execution.
        let outcomes: Vec<RequestOutcome> = sharded_map(&planned, workers, |_, request| {
            self.execute_request(&pipeline, request, &computed)
        });
        let degraded: Vec<RequestOutcome> = if needs_degraded {
            sharded_map(&planned, workers, |_, request| {
                self.execute_degraded(&pipeline, request)
            })
        } else {
            Vec::new()
        };
        // The governor's Economy alternative: the same resolved tool
        // selections (and the same selection-overhead costs — the
        // recommender ran once, at the configured quant) re-executed one
        // quant step coarser. Computed up front, in parallel, so the
        // sequential admission walk just picks per request.
        let eco: Vec<RequestOutcome> = if needs_eco {
            let eco_pipeline = Pipeline::new(
                &self.workload,
                &self.levels,
                &self.model,
                ServiceLevel::Economy.quant_for(self.config.quant),
            )
            .with_seed(self.config.seed)
            .with_device(self.config.device.profile());
            sharded_map(&planned, workers, |_, request| {
                self.execute_request(&eco_pipeline, request, &computed)
            })
        } else {
            Vec::new()
        };
        self.requests_served += planned.len() as u64;
        DrainOutput {
            outcomes,
            degraded,
            eco,
        }
    }
}

/// An in-flight incremental serving session over a mutably borrowed
/// [`ServeEngine`]. See the [module docs](self) for the contract: any
/// chopping of one request stream into `drain` batches — including one
/// request at a time — produces a bit-identical report.
pub struct ServeSession<'e> {
    engine: &'e mut ServeEngine,
    workers: usize,
    meta: StreamMeta,
    open_loop: bool,
    needs_degraded: bool,
    /// Whether the governor can actuate on this stream (active config on
    /// an open-loop stream) — gates the Economy alternative pass.
    needs_eco: bool,
    /// Idle draw of the configured device: what a queued request burns
    /// per second of waiting.
    idle_power_w: f64,
    started: std::time::Instant,
    embed_before: CacheStats,
    memo_before: CacheStats,
    session_fast_before: u64,
    sim: AdmissionSim,
    /// Submitted but not yet drained.
    pending: Vec<StreamRequest>,
    /// Full-quality outcome per drained request, submission order.
    outcomes: Vec<RequestOutcome>,
    /// Degraded-path alternatives (index-aligned) when they can be
    /// needed.
    degraded_outcomes: Vec<RequestOutcome>,
    /// Economy-rung alternatives (index-aligned) when the governor can
    /// choose them.
    eco_outcomes: Vec<RequestOutcome>,
    /// The governor's rung per request, submission order (all Full when
    /// it cannot actuate).
    chosen: Vec<ServiceLevel>,
    /// Arrival instant per request, submission order (0.0 closed-loop) —
    /// what carbon intensity is sampled at when a request resolves.
    arrivals: Vec<f64>,
    /// Per-stream energy bookkeeping (joules, grams, transitions,
    /// sustained-watts max).
    energy: EnergyLedger,
    /// Every submitted query index (for the unique-query count).
    queries: Vec<usize>,
    /// Runs of consecutive session ids seen in submission order.
    session_runs: usize,
    last_session: Option<u64>,
    last_arrival: f64,
}

impl ServeSession<'_> {
    /// Accepts one request into the current batch. Cheap: no engine work
    /// happens until [`ServeSession::drain`].
    ///
    /// # Errors
    ///
    /// Rejects query indices outside the engine's pool, a missing
    /// arrival timestamp on an open-loop stream (or a present one on a
    /// closed-loop stream), and arrival timestamps that decrease.
    pub fn submit(&mut self, request: StreamRequest) -> Result<Ticket, String> {
        let pool = self.engine.workload.queries.len();
        if request.query_index >= pool {
            return Err(format!(
                "request query index {} out of range (0..{pool})",
                request.query_index
            ));
        }
        match (self.open_loop, request.arrival_s) {
            (true, None) => {
                return Err(format!(
                    "open-loop stream ({}) requires an arrival timestamp per request",
                    self.meta.arrivals.label()
                ));
            }
            (false, Some(_)) => {
                return Err(
                    "closed-loop (back-to-back) stream carries no arrival timestamps".to_owned(),
                );
            }
            (true, Some(t)) => {
                if t < self.last_arrival {
                    return Err(format!(
                        "arrival {t}s decreases below {}s; arrivals must be nondecreasing",
                        self.last_arrival
                    ));
                }
                self.last_arrival = t;
            }
            (false, None) => {}
        }
        if self.last_session != Some(request.session) {
            self.last_session = Some(request.session);
            self.session_runs += 1;
        }
        self.queries.push(request.query_index);
        self.pending.push(request);
        Ok(Ticket(self.queries.len() - 1))
    }

    /// Requests submitted so far (drained or not).
    pub fn submitted(&self) -> usize {
        self.queries.len()
    }

    /// Runs the batch accumulated since the last drain through the
    /// engine's deterministic stages and offers each request to the
    /// virtual-clock admission queue. Returns the requests whose
    /// disposition resolved — from this batch or earlier ones whose
    /// executor slot came up. Queued requests resolve in a later drain
    /// or at [`ServeSession::finish`].
    pub fn drain(&mut self) -> Vec<RequestEvent> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch = std::mem::take(&mut self.pending);
        let out =
            self.engine
                .drain_batch(&batch, self.workers, self.needs_degraded, self.needs_eco);
        self.outcomes.extend(out.outcomes);
        self.degraded_outcomes.extend(out.degraded);
        self.eco_outcomes.extend(out.eco);

        // ---- Stage 5: sequential virtual-clock admission, one offer
        // per request in submission order. The governor decides a rung
        // *before* each offer (projecting the request at full fidelity
        // against the power/carbon budget) and observes the energy
        // actually admitted *after* it — both on the engine-persistent
        // state, both keyed only to the virtual arrival clock and the
        // submission order, so any worker count and any batch chopping
        // replays the identical decision sequence.
        let mut events = Vec::new();
        for request in &batch {
            let index = self.sim.submitted();
            let arrival = request.arrival_s.unwrap_or(0.0);
            self.arrivals.push(arrival);
            let governor_config = self.engine.config.governor;
            let chosen = if self.needs_eco {
                let before = self.engine.governor.level();
                let served = self.engine.governor.decide(
                    &governor_config,
                    &self.engine.carbon,
                    arrival,
                    self.outcomes[index].joules,
                    self.eco_outcomes[index].joules,
                );
                // Transitions count rung moves of the state machine, not
                // per-request served-variant flips.
                if self.engine.governor.level() != before {
                    self.energy.transitions += 1;
                }
                served
            } else {
                ServiceLevel::Full
            };
            self.chosen.push(chosen);
            let service_s = match chosen {
                ServiceLevel::Economy => self.eco_outcomes[index].seconds,
                _ => self.outcomes[index].seconds,
            };
            let resolved = self.sim.offer(
                request.session,
                arrival,
                service_s,
                self.needs_degraded
                    .then(|| self.degraded_outcomes[index].seconds),
            );
            // Feed the estimator what this offer actually admitted: the
            // executed variant's joules, or nothing for a shed request
            // (which still advances the window's clock).
            let shed_now = resolved
                .iter()
                .any(|(i, d)| *i == index && matches!(d, Disposition::Shed));
            let admitted_joules = if shed_now {
                0.0
            } else if self.sim.degraded(index) {
                self.floor_joules(index)
            } else {
                self.variant_joules(index)
            };
            let sustained =
                self.engine
                    .governor
                    .observe(&governor_config, arrival, admitted_joules);
            if sustained > self.energy.sustained_watts_max {
                self.energy.sustained_watts_max = sustained;
            }
            for (idx, disposition) in resolved {
                events.push(self.event(idx, disposition));
            }
        }
        events
    }

    /// Alias for [`ServeSession::drain`], for polling-style front-ends
    /// that advance the session on a cadence rather than per batch.
    pub fn tick(&mut self) -> Vec<RequestEvent> {
        self.drain()
    }

    /// Registers a tool on the live engine mid-stream. The pending batch
    /// is drained first — a mutation applies at a drain boundary, never
    /// inside one, so every request submitted before the call is served
    /// against the old catalog and every request after against the new
    /// one, for any worker count. Returns the new tool's catalog index
    /// plus the [`RequestEvent`]s the forced drain resolved.
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::register_tool`]; the stream is unaffected on
    /// error (the forced drain still happened).
    pub fn register_tool(
        &mut self,
        doc: &lim_tools::ToolDoc,
    ) -> Result<(usize, Vec<RequestEvent>), String> {
        let events = self.drain();
        let index = self.engine.register_tool(doc)?;
        Ok((index, events))
    }

    /// Retires the tool at `index` from the live engine mid-stream,
    /// draining the pending batch first (see
    /// [`ServeSession::register_tool`] for the boundary semantics).
    /// Returns the [`RequestEvent`]s the forced drain resolved.
    ///
    /// # Errors
    ///
    /// See [`ServeEngine::retire_tool`]; the stream is unaffected on
    /// error (the forced drain still happened).
    pub fn retire_tool(&mut self, index: usize) -> Result<Vec<RequestEvent>, String> {
        let events = self.drain();
        self.engine.retire_tool(index)?;
        Ok(events)
    }

    /// The engine's current catalog epoch — what a wire front-end stamps
    /// into the `catalog` acknowledgement frame after a mutation.
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Drains any pending batch, works the admission queue dry, and
    /// aggregates the final report — exactly what
    /// [`ServeEngine::process_trace`] returns for the same stream.
    pub fn finish(self) -> ServeReport {
        self.finish_with_events().0
    }

    /// [`ServeSession::finish`], also returning the tail
    /// [`RequestEvent`]s resolved by the final queue drain (a wire
    /// front-end still owes its client those dispositions).
    pub fn finish_with_events(mut self) -> (ServeReport, Vec<RequestEvent>) {
        let mut events = self.drain();
        let tail = self.sim.drain();
        for (idx, disposition) in tail {
            events.push(self.event(idx, disposition));
        }
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let mut unique = self.queries.clone();
        unique.sort_unstable();
        unique.dedup();
        let scope = ReportScope {
            trace_seed: self.meta.trace_seed,
            zipf_s: self.meta.zipf_s,
            sessions: self.meta.sessions.unwrap_or(self.session_runs),
            unique_queries: unique.len(),
            arrivals: self.meta.arrivals,
        };
        let admission = std::mem::replace(
            &mut self.sim,
            AdmissionSim::new(self.engine.config.admission, false),
        )
        .into_outcome();
        let report = self.engine.aggregate(
            &scope,
            self.workers,
            &self.outcomes,
            self.needs_degraded
                .then_some(self.degraded_outcomes.as_slice()),
            &admission,
            EnergyAccounting {
                eco_outcomes: self.needs_eco.then_some(self.eco_outcomes.as_slice()),
                chosen: &self.chosen,
                ledger: &self.energy,
                knobs: None,
            },
            self.embed_before,
            self.memo_before,
            self.session_fast_before,
            wall_seconds,
        );
        (report, events)
    }

    /// Execution joules of request `index` at the governor's chosen rung.
    fn variant_joules(&self, index: usize) -> f64 {
        match self.chosen.get(index) {
            Some(ServiceLevel::Economy) => self.eco_outcomes[index].joules,
            _ => self.outcomes[index].joules,
        }
    }

    /// Execution joules of request `index` on the admission degrade path.
    fn floor_joules(&self, index: usize) -> f64 {
        if self.needs_degraded {
            self.degraded_outcomes[index].joules
        } else {
            self.outcomes[index].joules
        }
    }

    /// Builds the event for a resolved request, billing the outcome its
    /// disposition actually serves, and records the request's final
    /// energy — execution at the served fidelity plus queue-wait idle
    /// draw — and its carbon grams at the arrival-time grid intensity.
    fn event(&mut self, index: usize, disposition: Disposition) -> RequestEvent {
        let service_s = match disposition {
            Disposition::Shed => None,
            Disposition::Degraded { .. } => Some(if self.needs_degraded {
                self.degraded_outcomes[index].seconds
            } else {
                self.outcomes[index].seconds
            }),
            Disposition::Served { .. } => Some(match self.chosen.get(index) {
                Some(ServiceLevel::Economy) => self.eco_outcomes[index].seconds,
                _ => self.outcomes[index].seconds,
            }),
        };
        if let Some(wait_s) = disposition.wait_s() {
            let execution_joules = match disposition {
                Disposition::Degraded { .. } => self.floor_joules(index),
                _ => self.variant_joules(index),
            };
            let joules = execution_joules + wait_s * self.idle_power_w;
            let arrival = self.arrivals.get(index).copied().unwrap_or(0.0);
            let grams = joules * self.engine.carbon.grams_per_joule_at(arrival);
            self.energy.record(index, joules, grams);
        }
        RequestEvent {
            ticket: Ticket(index),
            disposition,
            service_s,
        }
    }
}
